package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// tolerable reports whether an error is expected noise of the stress mix —
// contention and schema-change windows — rather than a correctness failure.
func tolerable(err error) bool {
	if err == nil {
		return true
	}
	msg := err.Error()
	for _, s := range []string{
		"does not exist",         // dropped-table / dropped-index window
		"no table or view named", // the planner's phrasing of the same window
		"no table named",         // the catalog's phrasing (query opened mid-drop)
		"no index named",         // concurrent DROP INDEX
		"write conflict",         // first-updater-wins abort; the loser retries
		"deadlock detected",      // waits-for cycle broken; the victim retries
		"unknown column",         // recreated table mid-prepare
		"changed shape",          // re-prepare after schema change
	} {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}

// TestSharedPlanCacheConcurrentStress mixes Prepare / Query / ExecBatch / DDL
// across many concurrent sessions sharing one plan cache, under -race.
//
// The snapshot oracle: transfer sessions move money between the two rows of
// "ledger" (total 2000) inside explicit transactions while every worker
// repeatedly reads the whole table. A snapshot read is atomic, so any sum
// other than 2000 is a torn read, and any row count other than 2 is a
// resurrected or vanished row.
//
// The staleness oracle: a coordinator repeatedly drops and recreates table
// "swap", inserts a row carrying the new generation number, and only then
// publishes the generation. Any query that starts after generation g is
// published and still returns a row with gen < g executed a stale plan (it
// read the dropped table's heap through a skeleton the schema change should
// have invalidated). Errors and empty results are fine — the next
// drop/create window is always open — but an old generation is not.
func TestSharedPlanCacheConcurrentStress(t *testing.T) {
	db, err := Open(Options{
		LockTimeout: 250 * time.Millisecond,
		// Small enough that eviction happens under the churn queries below.
		PlanCacheSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const workers = 8
	const coordinatorRounds = 25
	const workerIters = 120

	setup := db.Session()
	if _, err := setup.Execute("CREATE TABLE swap (id INT PRIMARY KEY, gen INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Execute("INSERT INTO swap VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if _, err := setup.Execute(fmt.Sprintf("CREATE TABLE wt_%d (id INT PRIMARY KEY, v INT)", w)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := setup.Execute("CREATE TABLE ledger (id INT PRIMARY KEY, amount FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Execute("INSERT INTO ledger VALUES (1, 1000), (2, 1000)"); err != nil {
		t.Fatal(err)
	}

	var gen atomic.Int64
	var staleness atomic.Int64
	var rowsSeen atomic.Int64
	var ledgerReads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Transfer sessions: contend on the two ledger rows, retrying the aborts
	// first-updater-wins and deadlock detection hand out. Readers below assert
	// the invariant these writes preserve.
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			// The two movers transfer in opposite directions so balances
			// keep crossing and the row locks keep colliding.
			from, to := 1, 2
			if m == 1 {
				from, to = 2, 1
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Execute("BEGIN"); err != nil {
					t.Errorf("mover %d begin: %v", m, err)
					return
				}
				_, err := s.Execute(fmt.Sprintf("UPDATE ledger SET amount = amount - 10 WHERE id = %d", from))
				if err == nil {
					_, err = s.Execute(fmt.Sprintf("UPDATE ledger SET amount = amount + 10 WHERE id = %d", to))
				}
				if err != nil {
					if !tolerable(err) {
						t.Errorf("mover %d update: %v", m, err)
					}
					if _, err := s.Execute("ROLLBACK"); err != nil {
						t.Errorf("mover %d rollback: %v", m, err)
						return
					}
					continue
				}
				if _, err := s.Execute("COMMIT"); err != nil && !tolerable(err) {
					t.Errorf("mover %d commit: %v", m, err)
					return
				}
			}
		}(m)
	}

	// Coordinator: the schema-changing session.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		s := db.Session()
		defer s.Close()
		for g := int64(1); g <= coordinatorRounds; g++ {
			if _, err := s.Execute("DROP TABLE swap"); err != nil && !tolerable(err) {
				t.Errorf("coordinator drop: %v", err)
				return
			}
			if _, err := s.Execute("CREATE TABLE swap (id INT PRIMARY KEY, gen INT)"); err != nil {
				t.Errorf("coordinator create: %v", err)
				return
			}
			if _, err := s.Execute(fmt.Sprintf("INSERT INTO swap VALUES (1, %d)", g)); err != nil && !tolerable(err) {
				t.Errorf("coordinator insert: %v", err)
				return
			}
			gen.Store(g)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			table := fmt.Sprintf("wt_%d", w)
			nextID := int64(1)
			for i := 0; i < workerIters; i++ {
				select {
				case <-stop:
					return
				default:
				}

				// 1. Prepare + Query the generation probe — the staleness
				// oracle. Every worker prepares the identical text, so this
				// also hammers the shared cache entry across sessions.
				expect := gen.Load()
				func() {
					st, err := s.Prepare("SELECT gen FROM swap WHERE id = ?")
					if err != nil {
						if !tolerable(err) {
							t.Errorf("worker %d prepare probe: %v", w, err)
						}
						return
					}
					defer st.Close()
					rows, err := st.Query(types.NewInt(1))
					if err != nil {
						if !tolerable(err) {
							t.Errorf("worker %d query probe: %v", w, err)
						}
						return
					}
					defer rows.Close()
					for rows.Next() {
						got := rows.Row()[0].Int()
						rowsSeen.Add(1)
						if got < expect {
							staleness.Add(1)
							t.Errorf("worker %d: stale plan result: saw gen %d after gen %d was published", w, got, expect)
						}
					}
					if err := rows.Err(); err != nil && !tolerable(err) {
						t.Errorf("worker %d probe rows: %v", w, err)
					}
				}()

				// 2. ExecBatch into the worker's own table (no cross-worker
				// lock contention, but the plan lives in the shared cache).
				func() {
					st, err := s.Prepare("INSERT INTO " + table + " (id, v) VALUES (?, ?)")
					if err != nil {
						if !tolerable(err) {
							t.Errorf("worker %d prepare insert: %v", w, err)
						}
						return
					}
					defer st.Close()
					batch := make([][]types.Value, 5)
					for j := range batch {
						batch[j] = []types.Value{types.NewInt(nextID), types.NewInt(int64(i))}
						nextID++
					}
					if _, err := st.ExecBatch(batch); err != nil && !tolerable(err) {
						t.Errorf("worker %d ExecBatch: %v", w, err)
					}
				}()

				// 3. A prepared parameterized UPDATE, rebinding per call.
				func() {
					st, err := s.Prepare("UPDATE " + table + " SET v = ? WHERE id = ?")
					if err != nil {
						if !tolerable(err) {
							t.Errorf("worker %d prepare update: %v", w, err)
						}
						return
					}
					defer st.Close()
					if _, err := st.Exec(types.NewInt(int64(i)), types.NewInt(1)); err != nil && !tolerable(err) {
						t.Errorf("worker %d update: %v", w, err)
					}
				}()

				// 4. DDL from the workers too: flip an index on the private
				// table, bumping the catalog version everyone else checks.
				if i%10 == 5 {
					idx := fmt.Sprintf("idx_%s_v", table)
					if _, err := s.Execute(fmt.Sprintf("CREATE INDEX %s ON %s (v)", idx, table)); err != nil && !tolerable(err) {
						t.Errorf("worker %d create index: %v", w, err)
					}
					if _, err := s.Execute("DROP INDEX " + idx); err != nil && !tolerable(err) {
						t.Errorf("worker %d drop index: %v", w, err)
					}
				}

				// 5. The snapshot oracle: read the whole ledger through a
				// streaming cursor while the movers are writing it. The
				// cursor's snapshot must show one atomic state — exactly two
				// rows summing to 2000 — never a half-applied transfer.
				func() {
					st, err := s.Prepare("SELECT id, amount FROM ledger")
					if err != nil {
						if !tolerable(err) {
							t.Errorf("worker %d prepare ledger probe: %v", w, err)
						}
						return
					}
					defer st.Close()
					rows, err := st.Query()
					if err != nil {
						if !tolerable(err) {
							t.Errorf("worker %d ledger probe: %v", w, err)
						}
						return
					}
					defer rows.Close()
					sum, count := 0.0, 0
					for rows.Next() {
						sum += rows.Row()[1].Float()
						count++
					}
					if err := rows.Err(); err != nil {
						if !tolerable(err) {
							t.Errorf("worker %d ledger rows: %v", w, err)
						}
						return
					}
					ledgerReads.Add(1)
					if count != 2 {
						t.Errorf("worker %d: ledger snapshot has %d rows, want 2 (resurrected or vanished row)", w, count)
					}
					if sum != 2000 {
						t.Errorf("worker %d: ledger snapshot sums to %v, want 2000 (torn read)", w, sum)
					}
				}()

				// 6. Churn: a unique statement text, forcing evictions in the
				// small shared cache while other sessions are mid-lookup.
				if i%7 == 3 {
					churn := fmt.Sprintf("SELECT v FROM %s WHERE id = %d", table, i)
					if _, err := s.Query(churn); err != nil && !tolerable(err) {
						t.Errorf("worker %d churn: %v", w, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if n := staleness.Load(); n != 0 {
		t.Fatalf("%d stale-plan results observed", n)
	}
	if rowsSeen.Load() == 0 {
		t.Fatal("the probe never returned a row; the oracle did not exercise anything")
	}
	if ledgerReads.Load() == 0 {
		t.Fatal("the ledger probe never completed; the snapshot oracle did not exercise anything")
	}
	if got, capacity := db.PlanCacheLen(), 32; got > capacity {
		t.Fatalf("shared cache holds %d entries, capacity %d", got, capacity)
	}
	stats := db.Stats()
	if stats.PlanCacheHits == 0 {
		t.Fatal("no shared-cache hits across 8 sessions preparing identical statements")
	}
	if stats.PlanCacheEvictions == 0 {
		t.Fatal("churn queries never evicted; the cache bound is not being exercised")
	}
	t.Logf("stress: %d probe rows, %d ledger reads, cache hits=%d misses=%d evictions=%d, committed=%d aborted=%d, conflicts=%d deadlocks=%d gc=%d",
		rowsSeen.Load(), ledgerReads.Load(), stats.PlanCacheHits, stats.PlanCacheMisses, stats.PlanCacheEvictions,
		stats.Committed, stats.Aborted, stats.WriteConflicts, stats.DeadlocksDetected, stats.VersionsGCed)
}
