package engine

import (
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

const dmlSchema = `
CREATE TABLE items (
	id INT PRIMARY KEY,
	label TEXT NOT NULL,
	qty INT DEFAULT 1,
	price FLOAT
);
INSERT INTO items (id, label, qty, price) VALUES
	(1, 'widget', 5, 2.50),
	(2, 'gadget', 3, 10.00),
	(3, 'sprocket', 7, 1.25),
	(4, 'flange', 2, 4.00),
	(5, 'gear', 9, 6.75);
`

func dmlTestDB(t *testing.T) (*Database, *Session) {
	t.Helper()
	db := OpenMemory()
	s := db.Session()
	if _, err := s.ExecuteScript(dmlSchema); err != nil {
		t.Fatal(err)
	}
	return db, s
}

// TestParamRangeUpdateUsesIndexRange checks that a prepared UPDATE with
// parameterized range bounds on an indexed column plans an index range scan
// and updates exactly the rows inside the bounds at each rebinding.
func TestParamRangeUpdateUsesIndexRange(t *testing.T) {
	_, s := dmlTestDB(t)
	st, err := s.Prepare("UPDATE items SET qty = qty + 100 WHERE id > ? AND id < ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	explain := st.ExplainPlan()
	if !strings.Contains(explain, "index range scan") {
		t.Fatalf("range UPDATE should plan an index range scan, got:\n%s", explain)
	}
	res, err := st.Exec(types.NewInt(1), types.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d, want 2 (ids 2 and 3)", res.RowsAffected)
	}
	// Rebinding moves the range without replanning.
	res, err = st.Exec(types.NewInt(4), types.NewInt(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d, want 1 (id 5)", res.RowsAffected)
	}
	check, err := s.Query("SELECT id, qty FROM items ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	wantQty := []int64{5, 103, 107, 2, 109}
	for i, row := range check.Rows {
		if row[1].Int() != wantQty[i] {
			t.Errorf("row %d qty = %d, want %d", i, row[1].Int(), wantQty[i])
		}
	}
}

// TestParamRangeDeleteUsesIndexRange covers DELETE with parameterized bounds.
func TestParamRangeDeleteUsesIndexRange(t *testing.T) {
	_, s := dmlTestDB(t)
	st, err := s.Prepare("DELETE FROM items WHERE id > ? AND id < ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if explain := st.ExplainPlan(); !strings.Contains(explain, "index range scan") {
		t.Fatalf("range DELETE should plan an index range scan, got:\n%s", explain)
	}
	res, err := st.Exec(types.NewInt(2), types.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d, want 2", res.RowsAffected)
	}
	left, err := s.Query("SELECT id FROM items ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(left.Rows) != 3 {
		t.Fatalf("rows left = %d, want 3", len(left.Rows))
	}
}

// TestExplainStatement checks the SQL-level EXPLAIN command: a parameterized
// range UPDATE on an indexed column must show the index range scan without
// binding (or executing) anything.
func TestExplainStatement(t *testing.T) {
	_, s := dmlTestDB(t)
	res, err := s.Execute("EXPLAIN UPDATE items SET price = 0 WHERE id > ? AND id < ?")
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, row := range res.Rows {
		text.WriteString(row[0].String())
		text.WriteByte('\n')
	}
	if !strings.Contains(text.String(), "Update items set price") {
		t.Errorf("EXPLAIN misses the update node:\n%s", text.String())
	}
	if !strings.Contains(text.String(), "index range scan") {
		t.Errorf("EXPLAIN misses the index range scan:\n%s", text.String())
	}
	// EXPLAIN must not have executed the write.
	check, err := s.Query("SELECT COUNT(*) FROM items WHERE price = 0")
	if err != nil {
		t.Fatal(err)
	}
	if n := check.Rows[0][0].Int(); n != 0 {
		t.Errorf("EXPLAIN executed the update: %d rows changed", n)
	}
	// SELECT and DELETE explain too.
	if res, err = s.Execute("EXPLAIN SELECT * FROM items WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Rows[len(res.Rows)-1][0].String(), "index lookup") {
		t.Errorf("EXPLAIN SELECT misses index lookup: %v", res.Rows)
	}
	if _, err := s.Execute("EXPLAIN BEGIN"); err == nil {
		t.Error("EXPLAIN of transaction control should fail")
	}
}

// TestWriteFetchSkipsDanglingIndexEntries: indexes hold an entry per row
// version, and an aborting transaction physically removes the versions it
// created — so an index entry whose record no longer resolves is a normal
// race, not corruption. Both the read and the write scan skip it; a write
// through one simply affects zero rows.
func TestWriteFetchSkipsDanglingIndexEntries(t *testing.T) {
	db, s := dmlTestDB(t)
	table, err := db.Catalog().GetTable("items")
	if err != nil {
		t.Fatal(err)
	}
	idx := table.IndexOn("id")
	if idx == nil {
		t.Fatal("items has no primary-key index")
	}
	bogus := storage.RecordID{Page: 999999, Slot: 7}
	if err := idx.Tree.Insert(types.EncodeKey(nil, types.NewInt(42)), bogus); err != nil {
		t.Fatal(err)
	}

	res, err := s.Execute("UPDATE items SET qty = 0 WHERE id = 42")
	if err != nil {
		t.Fatalf("UPDATE through a dangling index entry: %v", err)
	}
	if res.RowsAffected != 0 {
		t.Errorf("UPDATE affected %d rows, want 0", res.RowsAffected)
	}
	res, err = s.Execute("DELETE FROM items WHERE id = 42")
	if err != nil {
		t.Fatalf("DELETE through a dangling index entry: %v", err)
	}
	if res.RowsAffected != 0 {
		t.Errorf("DELETE affected %d rows, want 0", res.RowsAffected)
	}
	res2, err := s.Query("SELECT * FROM items WHERE id = 42")
	if err != nil {
		t.Fatalf("read scan should skip the dangling entry: %v", err)
	}
	if len(res2.Rows) != 0 {
		t.Errorf("read scan returned %d rows, want 0", len(res2.Rows))
	}
}

// TestExecBatch checks array binding: one plan, one transaction, every row.
func TestExecBatch(t *testing.T) {
	db, s := dmlTestDB(t)
	st, err := s.Prepare("INSERT INTO items (id, label, price) VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	committedBefore, _ := db.Transactions().Stats()
	batch := make([][]types.Value, 50)
	for i := range batch {
		batch[i] = []types.Value{
			types.NewInt(int64(100 + i)),
			types.NewString("bulk"),
			types.NewFloat(float64(i)),
		}
	}
	res, err := st.ExecBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 50 {
		t.Fatalf("affected = %d, want 50", res.RowsAffected)
	}
	committedAfter, _ := db.Transactions().Stats()
	if got := committedAfter - committedBefore; got != 1 {
		t.Errorf("batch used %d transactions, want 1", got)
	}
	count, err := s.Query("SELECT COUNT(*) FROM items WHERE label = 'bulk'")
	if err != nil {
		t.Fatal(err)
	}
	if n := count.Rows[0][0].Int(); n != 50 {
		t.Errorf("rows loaded = %d, want 50", n)
	}
	if stats := db.Stats(); stats.BatchRowsExecuted != 50 {
		t.Errorf("BatchRowsExecuted = %d, want 50", stats.BatchRowsExecuted)
	}
	// Qty fell back to its DEFAULT for every batched row.
	defaulted, err := s.Query("SELECT COUNT(*) FROM items WHERE label = 'bulk' AND qty = 1")
	if err != nil {
		t.Fatal(err)
	}
	if n := defaulted.Rows[0][0].Int(); n != 50 {
		t.Errorf("defaulted rows = %d, want 50", n)
	}
}

// TestExecBatchRollsBackOnError: a failing row aborts the whole batch.
func TestExecBatchRollsBackOnError(t *testing.T) {
	_, s := dmlTestDB(t)
	st, err := s.Prepare("INSERT INTO items (id, label) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	batch := [][]types.Value{
		{types.NewInt(200), types.NewString("ok")},
		{types.NewInt(1), types.NewString("duplicate key")},
		{types.NewInt(201), types.NewString("never reached")},
	}
	if _, err := st.ExecBatch(batch); err == nil {
		t.Fatal("duplicate key inside the batch should fail it")
	}
	count, err := s.Query("SELECT COUNT(*) FROM items WHERE id >= 200")
	if err != nil {
		t.Fatal(err)
	}
	if n := count.Rows[0][0].Int(); n != 0 {
		t.Errorf("batch left %d rows behind after rollback", n)
	}
}

// TestExecBatchRejectsNonDML: batches only make sense for writes.
func TestExecBatchRejectsNonDML(t *testing.T) {
	_, s := dmlTestDB(t)
	st, err := s.Prepare("SELECT * FROM items WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.ExecBatch([][]types.Value{{types.NewInt(1)}}); err == nil {
		t.Error("ExecBatch of a SELECT should fail")
	}
}

// TestWritePlanCaching: DML skeletons cache and re-preparing is a hit.
func TestWritePlanCaching(t *testing.T) {
	db, s := dmlTestDB(t)
	before := db.Stats()
	first, err := s.Prepare("UPDATE items SET qty = ? WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	first.Close()
	second, err := s.Prepare("UPDATE  items SET qty = ? WHERE id = ?") // same normalized text
	if err != nil {
		t.Fatal(err)
	}
	second.Close()
	after := db.Stats()
	if got := after.WritePlansCached - before.WritePlansCached; got != 1 {
		t.Errorf("write plans cached = %d, want 1 (second prepare is a hit)", got)
	}
	if got := after.PlanCacheHits - before.PlanCacheHits; got != 1 {
		t.Errorf("plan cache hits = %d, want 1", got)
	}
}

const dmlViewSchema = dmlSchema + `
CREATE VIEW cheap_items (code, tag, amount) AS SELECT id, label, price FROM items WHERE price < 5;
`

// TestViewWritesThroughPlannedDML covers updatable-view writes on the planned
// path: column translation from view names to base names, predicate
// translation, and CHECK OPTION rejection.
func TestViewWritesThroughPlannedDML(t *testing.T) {
	db := OpenMemory()
	s := db.Session()
	if _, err := s.ExecuteScript(dmlViewSchema); err != nil {
		t.Fatal(err)
	}

	// INSERT through the view, columns renamed (code→id, tag→label,
	// amount→price); the row satisfies the predicate so it is accepted.
	res, err := s.Execute("INSERT INTO cheap_items (code, tag, amount) VALUES (10, 'washer', 0.10)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("insert affected = %d", res.RowsAffected)
	}
	// CHECK OPTION: a row that would not be visible through the view is
	// rejected, both on INSERT and on UPDATE that moves a row out.
	if _, err := s.Execute("INSERT INTO cheap_items (code, tag, amount) VALUES (11, 'gold', 999)"); err == nil {
		t.Error("insert violating the view predicate should fail")
	}
	if _, err := s.Execute("UPDATE cheap_items SET amount = 999 WHERE code = 10"); err == nil {
		t.Error("update moving the row out of the view should fail")
	}

	// UPDATE through the view with a parameter; only rows visible in the view
	// qualify (price < 5 AND tag match), and assignments translate.
	st, err := s.Prepare("UPDATE cheap_items SET amount = ? WHERE tag = 'washer'")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if explain := st.ExplainPlan(); !strings.Contains(explain, "via view cheap_items") {
		t.Errorf("view update should explain its view:\n%s", explain)
	}
	res, err = st.Exec(types.NewFloat(1.99))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("view update affected = %d", res.RowsAffected)
	}
	check, err := s.Query("SELECT price FROM items WHERE id = 10")
	if err != nil {
		t.Fatal(err)
	}
	if got := check.Rows[0][0].Float(); got != 1.99 {
		t.Errorf("price = %v, want 1.99", got)
	}

	// DELETE through the view only reaches visible rows: id 2 (gadget, 10.00)
	// is outside the view and must survive an unqualified view delete.
	res, err = s.Execute("DELETE FROM cheap_items")
	if err != nil {
		t.Fatal(err)
	}
	left, err := s.Query("SELECT id FROM items ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range left.Rows {
		id := row[0].Int()
		if id != 2 && id != 5 {
			t.Errorf("row %d should have been deleted through the view", id)
		}
	}
	if len(left.Rows) != 2 {
		t.Errorf("rows left = %d, want 2 (gadget 10.00 and gear 6.75)", len(left.Rows))
	}
	_ = res
}
