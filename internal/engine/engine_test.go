package engine

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/types"
)

// seedSchema creates the customers/orders schema and a few rows through SQL.
const seedSchema = `
CREATE TABLE customers (
	id INT PRIMARY KEY,
	name TEXT NOT NULL,
	city TEXT DEFAULT 'Unknown',
	credit FLOAT DEFAULT 0
);
CREATE TABLE orders (
	id INT PRIMARY KEY,
	customer_id INT NOT NULL,
	total FLOAT,
	placed DATE
);
CREATE INDEX customers_city ON customers (city);
CREATE INDEX orders_customer ON orders (customer_id);
CREATE VIEW rich AS SELECT id, name, city, credit FROM customers WHERE credit >= 1000;
INSERT INTO customers (id, name, city, credit) VALUES
	(1, 'Ada', 'Boston', 1500),
	(2, 'Bob', 'Boston', 200),
	(3, 'Cyd', 'Chicago', 3000),
	(4, 'Dee', 'Denver', 50);
INSERT INTO orders VALUES
	(100, 1, 250, '1983-05-01'),
	(101, 1, 80, '1983-05-02'),
	(102, 3, 900, '1983-05-03');
`

func seededSession(t testing.TB) *Session {
	t.Helper()
	db := OpenMemory()
	s := db.Session()
	if _, err := s.ExecuteScript(seedSchema); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDDLAndInsertSelect(t *testing.T) {
	s := seededSession(t)
	res, err := s.Query("SELECT name, credit FROM customers WHERE city = 'Boston' ORDER BY credit DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "Ada" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "name" || res.Columns[1] != "credit" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestInsertDefaultsApplied(t *testing.T) {
	s := seededSession(t)
	if _, err := s.Execute("INSERT INTO customers (id, name) VALUES (10, 'Gus')"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Query("SELECT city, credit FROM customers WHERE id = 10")
	if res.Rows[0][0].Str() != "Unknown" || res.Rows[0][1].Float() != 0 {
		t.Errorf("defaults = %v", res.Rows[0])
	}
}

func TestInsertErrors(t *testing.T) {
	s := seededSession(t)
	cases := []string{
		"INSERT INTO customers (id, name) VALUES (1, 'Dup')",  // duplicate pk
		"INSERT INTO customers (id) VALUES (11)",              // NOT NULL name
		"INSERT INTO customers VALUES (12, 'x')",              // arity
		"INSERT INTO nosuch VALUES (1)",                       // unknown table
		"INSERT INTO customers (id, nosuch) VALUES (13, 'x')", // unknown column
		"INSERT INTO customers (id, name) VALUES (14, name)",  // non-constant value
	}
	for _, q := range cases {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("Execute(%q) should fail", q)
		}
	}
	// Failed inserts must not leave partial rows behind.
	res, _ := s.Query("SELECT COUNT(*) FROM customers")
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("row count after failed inserts = %v", res.Rows[0][0])
	}
}

func TestMultiRowInsertIsAtomic(t *testing.T) {
	s := seededSession(t)
	// The second row violates the primary key; the whole statement must roll back.
	_, err := s.Execute("INSERT INTO customers (id, name) VALUES (20, 'New'), (1, 'Dup')")
	if err == nil {
		t.Fatal("expected a unique violation")
	}
	res, _ := s.Query("SELECT COUNT(*) FROM customers WHERE id = 20")
	if res.Rows[0][0].Int() != 0 {
		t.Error("partial multi-row insert survived; statement should be atomic")
	}
}

func TestUpdateWithExpressionAndIndex(t *testing.T) {
	s := seededSession(t)
	res, err := s.Execute("UPDATE customers SET credit = credit + 100 WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	check, _ := s.Query("SELECT credit FROM customers WHERE id = 2")
	if check.Rows[0][0].Float() != 300 {
		t.Errorf("credit = %v", check.Rows[0][0])
	}
	// Multi-row update via unindexed predicate.
	res, err = s.Execute("UPDATE customers SET city = 'Hub' WHERE city = 'Boston'")
	if err != nil || res.RowsAffected != 2 {
		t.Errorf("affected = %d, %v", res.RowsAffected, err)
	}
}

func TestDeleteRows(t *testing.T) {
	s := seededSession(t)
	res, err := s.Execute("DELETE FROM orders WHERE customer_id = 1")
	if err != nil || res.RowsAffected != 2 {
		t.Fatalf("affected = %d, %v", res.RowsAffected, err)
	}
	left, _ := s.Query("SELECT COUNT(*) FROM orders")
	if left.Rows[0][0].Int() != 1 {
		t.Errorf("orders left = %v", left.Rows[0][0])
	}
	// DELETE without WHERE clears the table.
	if res, err := s.Execute("DELETE FROM orders"); err != nil || res.RowsAffected != 1 {
		t.Errorf("full delete = %+v, %v", res, err)
	}
}

func TestViewSelectAndInsertThroughView(t *testing.T) {
	s := seededSession(t)
	res, err := s.Query("SELECT name FROM rich ORDER BY credit DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "Cyd" {
		t.Errorf("rich rows = %v", res.Rows)
	}
	// Insert through the view: row satisfies the predicate.
	if _, err := s.Execute("INSERT INTO rich (id, name, city, credit) VALUES (5, 'Eve', 'Boston', 5000)"); err != nil {
		t.Fatal(err)
	}
	check, _ := s.Query("SELECT COUNT(*) FROM customers")
	if check.Rows[0][0].Int() != 5 {
		t.Errorf("customers = %v", check.Rows[0][0])
	}
	// Insert through the view violating its predicate must be rejected
	// (check option).
	if _, err := s.Execute("INSERT INTO rich (id, name, city, credit) VALUES (6, 'Sam', 'Boston', 10)"); err == nil {
		t.Error("insert violating the view predicate should fail")
	}
}

func TestUpdateAndDeleteThroughView(t *testing.T) {
	s := seededSession(t)
	// Update through the view touches only rows visible in the view.
	res, err := s.Execute("UPDATE rich SET city = 'Moved' WHERE city = 'Boston'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 { // only Ada is rich and in Boston
		t.Errorf("affected = %d", res.RowsAffected)
	}
	// An update that would push the row out of the view must be rejected.
	if _, err := s.Execute("UPDATE rich SET credit = 1 WHERE id = 3"); err == nil {
		t.Error("update violating the view predicate should fail")
	}
	// Delete through the view.
	res, err = s.Execute("DELETE FROM rich WHERE id = 1")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("delete through view = %+v, %v", res, err)
	}
	// Bob (not rich) is untouched.
	check, _ := s.Query("SELECT COUNT(*) FROM customers")
	if check.Rows[0][0].Int() != 3 {
		t.Errorf("customers = %v", check.Rows[0][0])
	}
}

func TestNonUpdatableViewRejectsWrites(t *testing.T) {
	s := seededSession(t)
	if _, err := s.Execute("CREATE VIEW spend AS SELECT customer_id, SUM(total) AS spent FROM orders GROUP BY customer_id"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("INSERT INTO spend VALUES (9, 100)"); err == nil {
		t.Error("insert into an aggregating view must fail")
	}
	if _, err := s.Execute("UPDATE spend SET spent = 0"); err == nil {
		t.Error("update of an aggregating view must fail")
	}
	if _, err := s.Execute("DELETE FROM spend"); err == nil {
		t.Error("delete from an aggregating view must fail")
	}
}

func TestExplicitTransactionCommitAndRollback(t *testing.T) {
	s := seededSession(t)
	if _, err := s.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if !s.InTransaction() {
		t.Error("InTransaction should be true after BEGIN")
	}
	if _, err := s.Execute("INSERT INTO customers (id, name) VALUES (30, 'Tmp')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Query("SELECT COUNT(*) FROM customers WHERE id = 30")
	if res.Rows[0][0].Int() != 0 {
		t.Error("rolled back insert is still visible")
	}

	if _, err := s.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("UPDATE customers SET credit = 9999 WHERE id = 4"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Query("SELECT credit FROM customers WHERE id = 4")
	if res.Rows[0][0].Float() != 9999 {
		t.Errorf("committed update lost: %v", res.Rows[0][0])
	}

	// Transaction-control misuse.
	if _, err := s.Execute("COMMIT"); err == nil {
		t.Error("COMMIT without BEGIN should fail")
	}
	if _, err := s.Execute("ROLLBACK"); err == nil {
		t.Error("ROLLBACK without BEGIN should fail")
	}
	if _, err := s.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("BEGIN"); err == nil {
		t.Error("nested BEGIN should fail")
	}
}

// TestConcurrentSessionsWriteRows: under MVCC two sessions writing different
// rows of the same table never wait on each other (this scenario timed out
// under table locks), and two writers racing for the same row resolve by
// first-updater-wins instead of a timeout.
func TestConcurrentSessionsWriteRows(t *testing.T) {
	db := OpenMemory()
	s1 := db.Session()
	if _, err := s1.ExecuteScript(seedSchema); err != nil {
		t.Fatal(err)
	}
	s2 := db.Session()

	if _, err := s1.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Execute("UPDATE customers SET credit = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// s2 writes a different row of the same table while s1's transaction is
	// still open: no table lock, no wait, no error.
	if _, err := s2.Execute("UPDATE customers SET credit = 2 WHERE id = 2"); err != nil {
		t.Fatalf("write to a different row must not conflict: %v", err)
	}
	if _, err := s1.Execute("COMMIT"); err != nil {
		t.Fatal(err)
	}

	// Same row: s2 blocks on the row lock until s1 commits, then aborts with
	// a write conflict rather than silently overwriting.
	if _, err := s1.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Execute("UPDATE customers SET credit = 10 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s2.Execute("UPDATE customers SET credit = 20 WHERE id = 1")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let s2 reach the row lock
	if _, err := s1.Execute("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "write conflict") {
		t.Errorf("racing same-row write = %v, want a write conflict", err)
	}
	stats := db.Stats()
	if stats.Committed == 0 || stats.WriteConflicts == 0 {
		t.Errorf("stats committed=%d conflicts=%d", stats.Committed, stats.WriteConflicts)
	}
	res, err := s2.Query("SELECT credit FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Float() != 10 {
		t.Errorf("credit = %v, want the first updater's 10", res.Rows[0][0])
	}
}

func TestDropObjects(t *testing.T) {
	s := seededSession(t)
	for _, q := range []string{"DROP VIEW rich", "DROP INDEX customers_city", "DROP TABLE orders"} {
		if _, err := s.Execute(q); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
	if _, err := s.Query("SELECT * FROM orders"); err == nil {
		t.Error("orders should be gone")
	}
}

func TestCreateViewValidatesDefinition(t *testing.T) {
	s := seededSession(t)
	if _, err := s.Execute("CREATE VIEW broken AS SELECT nosuch FROM customers"); err == nil {
		t.Error("view over a missing column should be rejected at creation")
	}
	if _, err := s.Execute("CREATE VIEW rich AS SELECT id FROM customers"); err == nil {
		t.Error("duplicate view name should be rejected")
	}
}

func TestPlanHelper(t *testing.T) {
	s := seededSession(t)
	node, err := s.Plan("SELECT * FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if node == nil || node.Schema().Len() != 4 {
		t.Errorf("plan schema = %v", node.Schema())
	}
}

func TestPersistenceAcrossReopenViaWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wow.wal")

	db, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if _, err := s.ExecuteScript(seedSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("UPDATE customers SET credit = 777 WHERE id = 4"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log is replayed into a fresh in-memory database.
	db2, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session()
	res, err := s2.Query("SELECT credit FROM customers WHERE id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 777 {
		t.Errorf("recovered credit = %v", res.Rows)
	}
	// Views and indexes are recovered through DDL records too.
	if res, err := s2.Query("SELECT COUNT(*) FROM rich"); err != nil || res.Rows[0][0].Int() != 2 {
		t.Errorf("recovered view query = %v, %v", res, err)
	}
}

func TestResultMessages(t *testing.T) {
	s := seededSession(t)
	res, err := s.Execute("INSERT INTO customers (id, name) VALUES (40, 'Zed')")
	if err != nil || !strings.Contains(res.Message, "1 row") {
		t.Errorf("message = %q, %v", res.Message, err)
	}
	res, _ = s.Execute("CREATE TABLE t2 (id INT PRIMARY KEY)")
	if !strings.Contains(res.Message, "t2") {
		t.Errorf("message = %q", res.Message)
	}
}

func TestDateValuesRoundTrip(t *testing.T) {
	s := seededSession(t)
	res, err := s.Query("SELECT placed FROM orders WHERE id = 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Kind() != types.KindDate || res.Rows[0][0].String() != "1983-05-01" {
		t.Errorf("date = %v (%v)", res.Rows[0][0], res.Rows[0][0].Kind())
	}
	res, err = s.Query("SELECT id FROM orders WHERE placed > '1983-05-01' ORDER BY id")
	if err != nil || len(res.Rows) != 2 {
		t.Errorf("date comparison rows = %v, %v", res.Rows, err)
	}
}

func BenchmarkEngineInsertAutocommit(b *testing.B) {
	db := OpenMemory()
	s := db.Session()
	if _, err := s.Execute("CREATE TABLE bench (id INT PRIMARY KEY, payload TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := "INSERT INTO bench (id, payload) VALUES (" + strconv.Itoa(i) + ", 'row payload text')"
		if _, err := s.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePointQuery(b *testing.B) {
	db := OpenMemory()
	s := db.Session()
	if _, err := s.ExecuteScript(seedSchema); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("SELECT name FROM customers WHERE id = 3"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOrderByIndexElision checks that ORDER BY served by an index (the
// planner's sort elision, which the window pager's keyset queries stream on)
// returns exactly what a sort would: ascending, descending via the reverse
// scan, and NULL keys first — the index covers NULL entries too.
func TestOrderByIndexElision(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	s := db.Session()
	if _, err := s.ExecuteScript(`
		CREATE TABLE elide (id INT PRIMARY KEY, v INT);
		CREATE INDEX elide_v ON elide (v);
		INSERT INTO elide VALUES (1, 30), (2, NULL), (3, 10), (4, 20), (5, NULL);
	`); err != nil {
		t.Fatal(err)
	}
	read := func(query string) []string {
		t.Helper()
		res, err := s.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, row := range res.Rows {
			out = append(out, row[0].SQL())
		}
		return out
	}
	join := func(ss []string) string { return strings.Join(ss, ",") }

	if got := read("SELECT v FROM elide ORDER BY v"); join(got) != "NULL,NULL,10,20,30" {
		t.Errorf("ORDER BY v = %v", got)
	}
	if got := read("SELECT v FROM elide ORDER BY v DESC"); join(got) != "30,20,10,NULL,NULL" {
		t.Errorf("ORDER BY v DESC = %v", got)
	}
	if got := read("SELECT id FROM elide WHERE id > 2 ORDER BY id DESC"); join(got) != "5,4,3" {
		t.Errorf("keyset DESC = %v", got)
	}
	// The plans really are sort-free: the scan serves the order.
	node, err := s.Plan("SELECT v FROM elide ORDER BY v DESC")
	if err != nil {
		t.Fatal(err)
	}
	if exp := plan.Explain(node); !strings.Contains(exp, "reverse") || strings.Contains(exp, "Sort") {
		t.Errorf("expected a sort-free reverse index scan:\n%s", exp)
	}
}
