package engine

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// cachedStatement is one plan-cache entry: everything Prepare produces that
// does not depend on a particular bind frame. SELECT and DML entries both
// carry their plan tree — reads and writes share one planned pipeline — so a
// cache hit skips the parser, the planner and (for writes) view analysis and
// access-path selection; DDL and transaction control carry only the AST.
//
// Entries are shared across sessions: after construction they are immutable
// (executing a plan compiles per-statement operator state elsewhere; the AST
// and plan tree are only read), except for lastUsed, which is atomic.
type cachedStatement struct {
	key  string
	stmt sql.Statement
	// paramNames has one entry per parameter ordinal ("" = positional).
	paramNames []string
	// paramKinds holds the inferred kind per ordinal (KindNull = unknown).
	paramKinds []types.Kind
	// node is the plan tree (SELECT, INSERT, UPDATE, DELETE and EXPLAIN;
	// nil for DDL and transaction control).
	node plan.Node
	// columns are the SELECT's output column names ("plan" for EXPLAIN).
	columns []string
	// explain marks an EXPLAIN wrapper: node is rendered, never executed.
	explain bool
	// catVersion is the catalog schema version the entry was built at; a
	// different current version means the entry may be stale.
	catVersion uint64
	// lastUsed is the cache clock tick of the entry's most recent hit; the
	// eviction pass removes the entry with the smallest tick.
	lastUsed atomic.Uint64
}

// planCache is the engine-wide cache of prepared statement skeletons keyed by
// normalized SQL text, shared by every session so that N connections
// preparing the same form query compile it once. Lookups take the read lock
// only (recency is stamped with an atomic clock tick, not a list move), so
// the hot path scales across connection goroutines; inserts take the write
// lock and evict the least-recently-used entry when the cache is full.
// Per-session bind state never enters the cache — entries are immutable
// skeletons, and each Stmt compiles its own operators over its own frame.
type planCache struct {
	mu       sync.RWMutex
	capacity int
	entries  map[string]*cachedStatement
	// clock orders uses; it only ever advances, and ties are harmless (two
	// entries stamped in the same race are equally recent).
	clock atomic.Uint64
}

// defaultPlanCacheSize bounds how many distinct statement texts the engine
// keeps prepared across all sessions. Forms workloads cycle through a handful
// of shapes per window; 256 gives plenty of headroom before eviction.
const defaultPlanCacheSize = 256

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &planCache{
		capacity: capacity,
		entries:  make(map[string]*cachedStatement),
	}
}

// get returns the cached entry for key, stamping it most recently used.
func (c *planCache) get(key string) *cachedStatement {
	c.mu.RLock()
	entry := c.entries[key]
	c.mu.RUnlock()
	if entry != nil {
		entry.lastUsed.Store(c.clock.Add(1))
	}
	return entry
}

// put inserts (or replaces) an entry, evicting the least recently used one
// when the cache is full. It reports whether an eviction happened. Two
// sessions racing to cache the same key both succeed; the later write wins,
// which is fine — both entries were built from the same catalog version or
// the stale one will be replaced on its next version-checked lookup.
func (c *planCache) put(entry *cachedStatement) (evicted bool) {
	entry.lastUsed.Store(c.clock.Add(1))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[entry.key]; !ok && len(c.entries) >= c.capacity {
		oldestKey := ""
		oldestTick := uint64(0)
		for k, e := range c.entries {
			if tick := e.lastUsed.Load(); oldestKey == "" || tick < oldestTick {
				oldestKey, oldestTick = k, tick
			}
		}
		delete(c.entries, oldestKey)
		evicted = true
	}
	c.entries[entry.key] = entry
	return evicted
}

// len returns the number of cached entries.
func (c *planCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// NormalizeSQL canonicalizes statement text for plan-cache keying: runs of
// whitespace collapse to a single space (except inside string literals and
// quoted identifiers), and leading/trailing space and trailing semicolons are
// trimmed. Two spellings of the same statement that differ only in layout
// share one cache entry.
func NormalizeSQL(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	inString, inQuoted := false, false
	pendingSpace := false
	for i := 0; i < len(text); i++ {
		ch := text[i]
		switch {
		case inString:
			b.WriteByte(ch)
			if ch == '\'' {
				inString = false
			}
		case inQuoted:
			b.WriteByte(ch)
			if ch == '"' {
				inQuoted = false
			}
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			pendingSpace = b.Len() > 0
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(ch)
			if ch == '\'' {
				inString = true
			}
			if ch == '"' {
				inQuoted = true
			}
		}
	}
	return strings.TrimRight(b.String(), "; ")
}
