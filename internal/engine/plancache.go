package engine

import (
	"container/list"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// cachedStatement is one plan-cache entry: everything Prepare produces that
// does not depend on a particular bind frame. SELECT and DML entries both
// carry their plan tree — reads and writes share one planned pipeline — so a
// cache hit skips the parser, the planner and (for writes) view analysis and
// access-path selection; DDL and transaction control carry only the AST.
type cachedStatement struct {
	key  string
	stmt sql.Statement
	// paramNames has one entry per parameter ordinal ("" = positional).
	paramNames []string
	// paramKinds holds the inferred kind per ordinal (KindNull = unknown).
	paramKinds []types.Kind
	// node is the plan tree (SELECT, INSERT, UPDATE, DELETE and EXPLAIN;
	// nil for DDL and transaction control).
	node plan.Node
	// columns are the SELECT's output column names ("plan" for EXPLAIN).
	columns []string
	// explain marks an EXPLAIN wrapper: node is rendered, never executed.
	explain bool
	// catVersion is the catalog schema version the entry was built at; a
	// different current version means the entry may be stale.
	catVersion uint64
}

// planCache is a per-session LRU of prepared statement skeletons keyed by
// normalized SQL text. Sessions are single-goroutine, so the cache needs no
// locking; the shared hit/miss counters on the Database are atomic.
type planCache struct {
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
}

// defaultPlanCacheSize bounds how many distinct statement texts a session
// keeps prepared. Forms workloads cycle through a handful of shapes per
// window; 256 gives plenty of headroom before eviction.
const defaultPlanCacheSize = 256

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &planCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// get returns the cached entry for key, marking it most recently used.
func (c *planCache) get(key string) *cachedStatement {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cachedStatement)
}

// put inserts (or replaces) an entry, evicting the least recently used one
// when the cache is full. It reports whether an eviction happened.
func (c *planCache) put(entry *cachedStatement) (evicted bool) {
	if el, ok := c.entries[entry.key]; ok {
		el.Value = entry
		c.order.MoveToFront(el)
		return false
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cachedStatement).key)
			evicted = true
		}
	}
	c.entries[entry.key] = c.order.PushFront(entry)
	return evicted
}

// len returns the number of cached entries.
func (c *planCache) len() int { return c.order.Len() }

// NormalizeSQL canonicalizes statement text for plan-cache keying: runs of
// whitespace collapse to a single space (except inside string literals and
// quoted identifiers), and leading/trailing space and trailing semicolons are
// trimmed. Two spellings of the same statement that differ only in layout
// share one cache entry.
func NormalizeSQL(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	inString, inQuoted := false, false
	pendingSpace := false
	for i := 0; i < len(text); i++ {
		ch := text[i]
		switch {
		case inString:
			b.WriteByte(ch)
			if ch == '\'' {
				inString = false
			}
		case inQuoted:
			b.WriteByte(ch)
			if ch == '"' {
				inQuoted = false
			}
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			pendingSpace = b.Len() > 0
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(ch)
			if ch == '\'' {
				inString = true
			}
			if ch == '"' {
				inQuoted = true
			}
		}
	}
	return strings.TrimRight(b.String(), "; ")
}
