package engine

import (
	"fmt"

	"repro/internal/txn"
)

// ApplyReplicated applies one committed transaction's worth of replicated
// WAL records to this database atomically: the rows land under a single
// local transaction, so concurrent readers' MVCC snapshots see all of the
// primary transaction's effects or none of them — never a torn prefix.
//
// The replica applier (internal/server/replica.go) is the caller. Records
// must be one primary transaction's, in log order, Begin/Commit stripped.
// DDL replays through a recovery session, so it reaches the catalog without
// being re-logged (the replica's own WAL, when it has one, stays clean —
// the same invariant crash recovery relies on). Like on the primary, a DDL
// statement's catalog change is visible the moment it applies rather than
// at commit.
//
// UPDATE and DELETE locate their target row by before-image, exactly as
// crash recovery does; a missing target means the replica has diverged from
// the primary and the error is not recoverable by retrying.
func (db *Database) ApplyReplicated(recs []txn.Record) error {
	t, err := db.txns.Begin()
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			_ = t.Rollback()
		}
	}()
	var sess *Session
	for _, rec := range recs {
		switch rec.Kind {
		case txn.RecordDDL:
			if sess == nil {
				sess = db.RecoverySession()
				defer sess.Close()
			}
			if _, err := sess.Execute(rec.DDL); err != nil {
				return fmt.Errorf("engine: replicated DDL %q: %w", rec.DDL, err)
			}
		case txn.RecordInsert:
			table, err := db.cat.GetTable(rec.Table)
			if err != nil {
				return fmt.Errorf("engine: replicated insert: %w", err)
			}
			if _, err := t.Insert(table, rec.New); err != nil {
				return fmt.Errorf("engine: replicated insert into %s: %w", rec.Table, err)
			}
		case txn.RecordDelete:
			table, err := db.cat.GetTable(rec.Table)
			if err != nil {
				return fmt.Errorf("engine: replicated delete: %w", err)
			}
			rid, ok, err := t.FindRow(table, rec.Old)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("engine: replicated delete from %s: no row matches the before-image (replica diverged)", rec.Table)
			}
			if err := t.Delete(table, rid); err != nil {
				return fmt.Errorf("engine: replicated delete from %s: %w", rec.Table, err)
			}
		case txn.RecordUpdate:
			table, err := db.cat.GetTable(rec.Table)
			if err != nil {
				return fmt.Errorf("engine: replicated update: %w", err)
			}
			rid, ok, err := t.FindRow(table, rec.Old)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("engine: replicated update of %s: no row matches the before-image (replica diverged)", rec.Table)
			}
			if _, err := t.Update(table, rid, rec.New); err != nil {
				return fmt.Errorf("engine: replicated update of %s: %w", rec.Table, err)
			}
		default:
			return fmt.Errorf("engine: cannot replicate %s record", rec.Kind)
		}
	}
	if err := t.Commit(); err != nil {
		return err
	}
	committed = true
	return nil
}
