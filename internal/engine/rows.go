package engine

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/types"
)

// Rows is a streaming cursor over a query's result. Rows are pulled from the
// operator tree one at a time — nothing is materialised beyond what the plan
// itself needs (a sort or aggregate buffers; a plain scan streams straight
// from the pages).
//
//	rows, err := stmt.Query()
//	...
//	defer rows.Close()
//	for rows.Next() {
//		var id int64
//		var name string
//		if err := rows.Scan(&id, &name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The cursor holds its statement (and, outside an explicit transaction, the
// shared locks on the tables it reads) until Close. Exhausting the rows
// closes the cursor automatically; Close is idempotent, and closing
// mid-iteration releases the locks immediately.
type Rows struct {
	stmt    *Stmt
	op      exec.Operator
	columns []string
	release func()
	cur     types.Tuple
	err     error
	closed  bool
}

// Columns returns the result's column names.
func (r *Rows) Columns() []string {
	out := make([]string, len(r.columns))
	copy(out, r.columns)
	return out
}

// Next advances to the next row. It returns false when the rows are exhausted
// or an error occurred — check Err afterwards to tell the two apart. The
// cursor closes itself when Next returns false.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	tuple, ok, err := r.op.Next()
	if err != nil {
		r.err = err
		r.close()
		return false
	}
	if !ok {
		r.close()
		return false
	}
	r.cur = tuple
	r.stmt.session.db.prep.rowsStreamed.Add(1)
	return true
}

// Row returns the current row (valid until the next call to Next).
func (r *Rows) Row() types.Tuple { return r.cur }

// Scan copies the current row into the destinations: *types.Value takes the
// value as is; *int64, *int, *float64, *string and *bool convert, with SQL
// NULL becoming each type's zero value.
func (r *Rows) Scan(dests ...any) error {
	if r.cur == nil {
		return fmt.Errorf("engine: Scan called before Next (or after the rows were exhausted)")
	}
	if len(dests) != len(r.cur) {
		return fmt.Errorf("engine: Scan got %d destinations for %d columns", len(dests), len(r.cur))
	}
	for i, dest := range dests {
		if err := assignValue(r.cur[i], dest); err != nil {
			return fmt.Errorf("engine: Scan column %d (%s): %w", i+1, r.columnName(i), err)
		}
	}
	return nil
}

func (r *Rows) columnName(i int) string {
	if i < len(r.columns) {
		return r.columns[i]
	}
	return "?"
}

func assignValue(v types.Value, dest any) error {
	switch d := dest.(type) {
	case *types.Value:
		*d = v
	case *int64:
		if v.IsNull() {
			*d = 0
			return nil
		}
		cast, err := v.Cast(types.KindInt)
		if err != nil {
			return err
		}
		*d = cast.Int()
	case *int:
		if v.IsNull() {
			*d = 0
			return nil
		}
		cast, err := v.Cast(types.KindInt)
		if err != nil {
			return err
		}
		*d = int(cast.Int())
	case *float64:
		if v.IsNull() {
			*d = 0
			return nil
		}
		cast, err := v.Cast(types.KindFloat)
		if err != nil {
			return err
		}
		*d = cast.Float()
	case *string:
		if v.IsNull() {
			*d = ""
			return nil
		}
		*d = v.String()
	case *bool:
		if v.IsNull() {
			*d = false
			return nil
		}
		cast, err := v.Cast(types.KindBool)
		if err != nil {
			return err
		}
		*d = cast.Bool()
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

// Err returns the error that stopped iteration, if any.
func (r *Rows) Err() error { return r.err }

// bufferedOp serves pre-materialised rows — a RETURNING clause's output —
// through the ordinary operator interface, so a write's cursor behaves exactly
// like a SELECT's.
type bufferedOp struct {
	schema *types.Schema
	rows   []types.Tuple
	pos    int
}

func (o *bufferedOp) Schema() *types.Schema { return o.schema }
func (o *bufferedOp) Open() error           { o.pos = 0; return nil }
func (o *bufferedOp) Close() error          { return nil }

func (o *bufferedOp) Next() (types.Tuple, bool, error) {
	if o.pos >= len(o.rows) {
		return nil, false, nil
	}
	row := o.rows[o.pos]
	o.pos++
	return row, true, nil
}

// Close releases the cursor: the operator tree shuts down, any cursor-held
// read locks release, and the statement becomes runnable again. Closing an
// already-closed cursor is a no-op.
func (r *Rows) Close() error {
	r.close()
	return nil
}

func (r *Rows) close() {
	if r.closed {
		return
	}
	r.closed = true
	r.cur = nil
	if err := r.op.Close(); err != nil && r.err == nil {
		r.err = err
	}
	if r.release != nil {
		r.release()
	}
	r.stmt.busy = false
	delete(r.stmt.session.openRows, r)
	r.stmt.session.db.prep.cursorsClosed.Add(1)
}
