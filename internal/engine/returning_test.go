// Tests for DML RETURNING clauses and INSERT ... SELECT: result shape on the
// materialised Exec path, cursor behavior on the Query path, MVCC semantics
// (returned rows show the write's own post-images), transactional visibility
// after ROLLBACK, and the ExecBatch rejection.
package engine

import (
	"errors"
	"testing"

	"repro/internal/types"
)

func TestInsertReturningRows(t *testing.T) {
	_, s := dmlTestDB(t)
	res, err := s.Execute("INSERT INTO items (id, label) VALUES (10, 'cog'), (11, 'axle') RETURNING id, label, qty")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d, want 2", res.RowsAffected)
	}
	wantCols := []string{"id", "label", "qty"}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
		}
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// qty was not supplied: RETURNING must see the applied DEFAULT, not NULL.
	if got := res.Rows[0][2].Int(); got != 1 {
		t.Fatalf("returned qty = %d, want default 1", got)
	}
	if got := res.Rows[1][1].String(); got != "axle" {
		t.Fatalf("returned label = %q, want axle", got)
	}
}

func TestInsertReturningStarExpandsSchema(t *testing.T) {
	_, s := dmlTestDB(t)
	res, err := s.Execute("INSERT INTO items (id, label, qty, price) VALUES (20, 'bolt', 4, 0.10) RETURNING *")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 4 || len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("star RETURNING shape: cols=%v rows=%v", res.Columns, res.Rows)
	}
	if res.Rows[0][0].Int() != 20 || res.Rows[0][1].String() != "bolt" {
		t.Fatalf("star RETURNING row = %v", res.Rows[0])
	}
}

// TestUpdateReturningMultiRowMVCC checks that a multi-row UPDATE ... RETURNING
// projects the post-update images (the new MVCC versions the statement wrote),
// while a snapshot taken before the update keeps seeing the old versions.
func TestUpdateReturningMultiRowMVCC(t *testing.T) {
	db, s := dmlTestDB(t)

	// A second session with an open explicit transaction pins a pre-update
	// snapshot.
	reader := db.Session()
	defer reader.Close()
	if _, err := reader.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	before, err := reader.Query("SELECT qty FROM items WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Prepare("UPDATE items SET qty = qty * 2 WHERE qty >= @min RETURNING id, qty")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BindNamed("min", types.NewInt(5)); err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for rows.Next() {
		var id, qty int64
		if err := rows.Scan(&id, &qty); err != nil {
			t.Fatal(err)
		}
		got[id] = qty
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// Seed rows with qty >= 5: id 1 (5→10), id 3 (7→14), id 5 (9→18).
	want := map[int64]int64{1: 10, 3: 14, 5: 18}
	if len(got) != len(want) {
		t.Fatalf("returned rows = %v, want %v", got, want)
	}
	for id, qty := range want {
		if got[id] != qty {
			t.Fatalf("returned qty for id %d = %d, want %d (post-update image)", id, got[id], qty)
		}
	}

	// The reader's pinned snapshot still sees the pre-update version.
	if len(before.Rows) != 1 || before.Rows[0][0].Int() != 5 {
		t.Fatalf("pre-update snapshot qty = %v, want 5", before.Rows)
	}
	after, err := reader.Query("SELECT qty FROM items WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows[0][0].Int() != 5 {
		t.Fatalf("repeatable read qty = %d, want 5", after.Rows[0][0].Int())
	}
	if _, err := reader.Execute("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteReturningProjectsLastVersion(t *testing.T) {
	_, s := dmlTestDB(t)
	res, err := s.Execute("DELETE FROM items WHERE qty < 4 RETURNING label, price")
	if err != nil {
		t.Fatal(err)
	}
	// Seed rows with qty < 4: gadget (3) and flange (2).
	if res.RowsAffected != 2 || len(res.Rows) != 2 {
		t.Fatalf("affected=%d rows=%v", res.RowsAffected, res.Rows)
	}
	labels := map[string]bool{}
	for _, row := range res.Rows {
		labels[row[0].String()] = true
	}
	if !labels["gadget"] || !labels["flange"] {
		t.Fatalf("deleted labels = %v, want gadget and flange", labels)
	}
	left, err := s.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if left.Rows[0][0].Int() != 3 {
		t.Fatalf("remaining rows = %d, want 3", left.Rows[0][0].Int())
	}
}

// TestReturningInRolledBackTxn checks that RETURNING rows handed to the caller
// inside an explicit transaction do not outlive a ROLLBACK: the projection was
// real at execution time, but the write itself is undone.
func TestReturningInRolledBackTxn(t *testing.T) {
	_, s := dmlTestDB(t)
	if _, err := s.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute("INSERT INTO items (id, label) VALUES (30, 'ghost') RETURNING id, label")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].String() != "ghost" {
		t.Fatalf("in-txn RETURNING rows = %v", res.Rows)
	}
	if _, err := s.Execute("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	check, err := s.Query("SELECT COUNT(*) FROM items WHERE id = 30")
	if err != nil {
		t.Fatal(err)
	}
	if check.Rows[0][0].Int() != 0 {
		t.Fatalf("rolled-back row still visible")
	}
}

func TestExecBatchRejectsReturning(t *testing.T) {
	_, s := dmlTestDB(t)
	st, err := s.Prepare("INSERT INTO items (id, label) VALUES (?, ?) RETURNING id")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.ExecBatch([][]types.Value{
		{types.NewInt(40), types.NewString("a")},
		{types.NewInt(41), types.NewString("b")},
	})
	if !errors.Is(err, ErrBatchReturning) {
		t.Fatalf("ExecBatch on RETURNING: err = %v, want ErrBatchReturning", err)
	}
	// The rejection must happen before any row is written.
	check, err := s.Query("SELECT COUNT(*) FROM items WHERE id >= 40")
	if err != nil {
		t.Fatal(err)
	}
	if check.Rows[0][0].Int() != 0 {
		t.Fatalf("rejected batch wrote rows")
	}
}

func TestInsertSelectCopiesRows(t *testing.T) {
	_, s := dmlTestDB(t)
	if _, err := s.Execute("CREATE TABLE archive (id INT PRIMARY KEY, label TEXT, qty INT)"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Prepare("INSERT INTO archive (id, label, qty) SELECT id, label, qty FROM items WHERE qty > @min RETURNING id")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BindNamed("min", types.NewInt(4)); err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	// Seed rows with qty > 4: ids 1 (5), 3 (7), 5 (9).
	if res.RowsAffected != 3 || len(res.Rows) != 3 {
		t.Fatalf("INSERT..SELECT affected=%d rows=%v", res.RowsAffected, res.Rows)
	}
	check, err := s.Query("SELECT COUNT(*) FROM archive")
	if err != nil {
		t.Fatal(err)
	}
	if check.Rows[0][0].Int() != 3 {
		t.Fatalf("archive rows = %d, want 3", check.Rows[0][0].Int())
	}
}

// TestInsertSelectDoesNotSeeOwnRows guards the halting property: a
// self-referencing INSERT ... SELECT drains its source through the statement's
// snapshot before inserting, so it copies the pre-statement rows exactly once.
func TestInsertSelectDoesNotSeeOwnRows(t *testing.T) {
	_, s := dmlTestDB(t)
	res, err := s.Execute("INSERT INTO items (id, label, qty, price) SELECT id + 100, label, qty, price FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 5 {
		t.Fatalf("self-referencing INSERT..SELECT affected = %d, want 5", res.RowsAffected)
	}
	check, err := s.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if check.Rows[0][0].Int() != 10 {
		t.Fatalf("items rows = %d, want 10", check.Rows[0][0].Int())
	}
}

func TestInsertSelectArityMismatch(t *testing.T) {
	_, s := dmlTestDB(t)
	_, err := s.Execute("INSERT INTO items (id, label) SELECT id, label, qty FROM items")
	if err == nil {
		t.Fatal("arity mismatch should fail at plan time")
	}
}

func TestReturningCursorColumns(t *testing.T) {
	_, s := dmlTestDB(t)
	st, err := s.Prepare("DELETE FROM items WHERE id = ? RETURNING label AS gone")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.ReturnsRows() {
		t.Fatal("RETURNING statement should report ReturnsRows")
	}
	if st.IsQuery() {
		t.Fatal("RETURNING write is not a SELECT")
	}
	cols := st.Columns()
	if len(cols) != 1 || cols[0] != "gone" {
		t.Fatalf("columns = %v, want [gone]", cols)
	}
	rows, err := st.Query(types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
		if got := rows.Row()[0].String(); got != "gadget" {
			t.Fatalf("returned label = %q, want gadget", got)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("cursor yielded %d rows, want 1", n)
	}
	// The statement is reusable after the cursor closes.
	res, err := st.Exec(types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 || len(res.Rows) != 1 {
		t.Fatalf("re-exec affected=%d rows=%v", res.RowsAffected, res.Rows)
	}
}
