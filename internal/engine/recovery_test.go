package engine

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/types"
)

func intv(i int) types.Value    { return types.NewInt(int64(i)) }
func strv(s string) types.Value { return types.NewString(s) }

func countCustomers(t *testing.T, db *Database) int64 {
	t.Helper()
	s := db.Session()
	defer s.Close()
	res, err := s.Query("SELECT COUNT(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].Int()
}

// TestRestartTwiceIdempotent is the replay-re-logging satellite: the seed's
// recovery replayed DDL through the normal Execute path, appending a second
// copy of every schema statement to the log being recovered — so the SECOND
// restart found duplicate CREATEs and refused to start. Recovery must leave
// the log byte-identical and survive any number of restarts.
func TestRestartTwiceIdempotent(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wow.wal")

	db, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if _, err := s.ExecuteScript(seedSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("INSERT INTO customers (id, name) VALUES (100, 'Restart')"); err != nil {
		t.Fatal(err)
	}
	want := countCustomers(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	size1, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		db, err = Open(Options{WALPath: walPath})
		if err != nil {
			t.Fatalf("restart %d: %v", i+1, err)
		}
		if got := countCustomers(t, db); got != want {
			t.Fatalf("restart %d: %d customers, want %d", i+1, got, want)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		size, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if size.Size() != size1.Size() {
			t.Fatalf("restart %d grew the log %d -> %d bytes: recovery is re-logging",
				i+1, size1.Size(), size.Size())
		}
	}
}

// TestCheckpointFastRestart: after a checkpoint, a restart must load the
// image and replay only the records written after it.
func TestCheckpointFastRestart(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wow.wal")

	db, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if _, err := s.ExecuteScript(seedSchema); err != nil {
		t.Fatal(err)
	}
	ins, err := s.Prepare("INSERT INTO customers (id, name) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := ins.Exec(intv(1000+i), strv("pre")); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Rows < 50 || ckpt.Tables == 0 {
		t.Fatalf("checkpoint captured %d rows / %d tables", ckpt.Rows, ckpt.Tables)
	}
	if _, err := os.Stat(walPath + ".ckpt"); err != nil {
		t.Fatalf("checkpoint pointer not written: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ins.Exec(intv(2000+i), strv("post")); err != nil {
			t.Fatal(err)
		}
	}
	want := countCustomers(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rec := db2.Recovery()
	if !rec.Recovered || !rec.FromCheckpoint {
		t.Fatalf("recovery = %+v, want FromCheckpoint", rec)
	}
	if rec.ImageRows < 50 {
		t.Errorf("image rows = %d, want >= 50", rec.ImageRows)
	}
	// Only the 5 post-checkpoint inserts are applied from the tail.
	if rec.TailApplied != 5 {
		t.Errorf("tail applied = %d, want 5", rec.TailApplied)
	}
	if got := db2.Stats().RecoveryRecordsReplayed; got != uint64(rec.TailApplied) {
		t.Errorf("Stats.RecoveryRecordsReplayed = %d, want %d", got, rec.TailApplied)
	}
	if got := countCustomers(t, db2); got != want {
		t.Errorf("recovered %d customers, want %d", got, want)
	}
	// Indexes were rebuilt through the recovered DDL history: a point query
	// planned through the primary index must find image-installed rows.
	s2 := db2.Session()
	defer s2.Close()
	res, err := s2.Query("SELECT name FROM customers WHERE id = 1025")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].String() != "pre" {
		t.Errorf("index lookup of image row = %v, %v", res, err)
	}
}

// TestTornWALTailTruncatedOnOpen: garbage after the last complete record —
// a crash mid-append — must not block startup; the tail is truncated and
// later appends produce a clean log.
func TestTornWALTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wow.wal")

	db, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if _, err := s.ExecuteScript(seedSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("INSERT INTO customers (id, name) VALUES (7, 'Torn')"); err != nil {
		t.Fatal(err)
	}
	want := countCustomers(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: half a frame of garbage on the tail.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0x19, 0xde, 0xad, 0xbe, 0xef, 0x01}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if got := db2.Recovery().BytesDiscarded; got != int64(len(garbage)) {
		t.Errorf("BytesDiscarded = %d, want %d", got, len(garbage))
	}
	if got := countCustomers(t, db2); got != want {
		t.Errorf("recovered %d customers, want %d", got, want)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() < clean.Size() {
		t.Errorf("log shrank past the valid prefix: %d < %d", after.Size(), clean.Size())
	}
	// Write through the truncated log, restart again: still clean.
	s2 := db2.Session()
	if _, err := s2.Execute("INSERT INTO customers (id, name) VALUES (8, 'After')"); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := countCustomers(t, db3); got != want+1 {
		t.Errorf("after truncate+append: %d customers, want %d", got, want+1)
	}
	if db3.Recovery().BytesDiscarded != 0 {
		t.Errorf("second recovery discarded %d bytes from a clean log", db3.Recovery().BytesDiscarded)
	}
}

// TestPeriodicCheckpointer: Open with an interval must checkpoint on its own
// and recover from the checkpoint after Close.
func TestPeriodicCheckpointer(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wow.wal")

	db, err := Open(Options{WALPath: walPath, CheckpointInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	if _, err := s.ExecuteScript(seedSchema); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().CheckpointsTaken == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint taken within 5s at a 5ms interval")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if db.Stats().CheckpointFailures != 0 {
		t.Errorf("checkpoint failures = %d", db.Stats().CheckpointFailures)
	}
	want := countCustomers(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Recovery().FromCheckpoint {
		t.Error("restart did not recover from the periodic checkpoint")
	}
	if got := countCustomers(t, db2); got != want {
		t.Errorf("recovered %d customers, want %d", got, want)
	}
}
