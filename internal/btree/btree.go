// Package btree implements the ordered index structure the engine uses for
// primary keys, UNIQUE constraints and secondary indexes: an in-memory B+tree
// keyed by order-preserving byte strings (see types.EncodeKey) whose leaves
// hold record identifiers.
//
// Leaves are chained, so range scans — the access path behind query-by-form
// predicates such as "credit > 1000" and behind ordered browsing — walk the
// leaf level without touching the interior. Deletion is implemented lazily:
// entries are removed from leaves but nodes are not merged, which keeps the
// tree correct (a standard trade-off for indexes that shrink rarely, as the
// interactive workloads here do).
package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// fanout is the maximum number of keys per node before it splits.
const fanout = 64

// ErrDuplicateKey is returned when inserting a key that already exists in a
// unique index.
var ErrDuplicateKey = errors.New("btree: duplicate key")

// Tree is a B+tree from encoded keys to record identifiers.
// It is safe for concurrent use; a single RWMutex guards the whole tree.
type Tree struct {
	mu     sync.RWMutex
	root   node
	unique bool
	size   int // number of (key, rid) entries
	height int
}

type node interface {
	// isLeaf reports whether the node is a leaf.
	isLeaf() bool
}

type leafNode struct {
	keys [][]byte
	// vals[i] holds every record with keys[i]; len(vals[i]) > 1 only in
	// non-unique indexes.
	vals [][]storage.RecordID
	next *leafNode
}

func (*leafNode) isLeaf() bool { return true }

type innerNode struct {
	// keys[i] is the smallest key reachable through children[i+1];
	// len(children) == len(keys)+1.
	keys     [][]byte
	children []node
}

func (*innerNode) isLeaf() bool { return false }

// New creates an empty tree. A unique tree rejects duplicate keys.
func New(unique bool) *Tree {
	return &Tree{root: &leafNode{}, unique: unique, height: 1}
}

// Unique reports whether the tree enforces key uniqueness.
func (t *Tree) Unique() bool { return t.unique }

// Len returns the number of (key, record) entries in the tree.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Height returns the number of levels in the tree (1 for a single leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Insert adds (key, rid) to the tree. In a unique tree an existing key causes
// ErrDuplicateKey; in a non-unique tree the rid is appended to the key's
// posting list (inserting the same (key, rid) pair twice is a no-op).
func (t *Tree) Insert(key []byte, rid storage.RecordID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := make([]byte, len(key))
	copy(k, key)
	promoted, right, err := t.insert(t.root, k, rid)
	if err != nil {
		return err
	}
	if right != nil {
		t.root = &innerNode{keys: [][]byte{promoted}, children: []node{t.root, right}}
		t.height++
	}
	return nil
}

// insert recurses into n. When n splits, it returns the key to promote and
// the new right sibling.
func (t *Tree) insert(n node, key []byte, rid storage.RecordID) (promoted []byte, right node, err error) {
	switch n := n.(type) {
	case *leafNode:
		i, found := findKey(n.keys, key)
		if found {
			if t.unique {
				return nil, nil, fmt.Errorf("%w: %q", ErrDuplicateKey, key)
			}
			for _, existing := range n.vals[i] {
				if existing == rid {
					return nil, nil, nil
				}
			}
			n.vals[i] = append(n.vals[i], rid)
			t.size++
			return nil, nil, nil
		}
		n.keys = insertAt(n.keys, i, key)
		n.vals = insertValsAt(n.vals, i, []storage.RecordID{rid})
		t.size++
		if len(n.keys) <= fanout {
			return nil, nil, nil
		}
		// Split the leaf in half.
		mid := len(n.keys) / 2
		sibling := &leafNode{
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([][]storage.RecordID(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = sibling
		return sibling.keys[0], sibling, nil

	case *innerNode:
		i, found := findKey(n.keys, key)
		if found {
			i++
		}
		promoted, right, err := t.insert(n.children[i], key, rid)
		if err != nil || right == nil {
			return nil, nil, err
		}
		n.keys = insertAt(n.keys, i, promoted)
		n.children = insertChildAt(n.children, i+1, right)
		if len(n.keys) <= fanout {
			return nil, nil, nil
		}
		mid := len(n.keys) / 2
		promote := n.keys[mid]
		sibling := &innerNode{
			keys:     append([][]byte(nil), n.keys[mid+1:]...),
			children: append([]node(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid:mid]
		n.children = n.children[: mid+1 : mid+1]
		return promote, sibling, nil
	}
	return nil, nil, fmt.Errorf("btree: unknown node type %T", n)
}

// Delete removes the entry (key, rid). It reports whether an entry was
// removed. Nodes are not rebalanced.
func (t *Tree) Delete(key []byte, rid storage.RecordID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.findLeaf(key)
	i, found := findKey(leaf.keys, key)
	if !found {
		return false
	}
	vals := leaf.vals[i]
	for j, existing := range vals {
		if existing == rid {
			vals = append(vals[:j], vals[j+1:]...)
			t.size--
			if len(vals) == 0 {
				leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
				leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
			} else {
				leaf.vals[i] = vals
			}
			return true
		}
	}
	return false
}

// Search returns the record identifiers stored under key, or nil when absent.
func (t *Tree) Search(key []byte) []storage.RecordID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.findLeaf(key)
	i, found := findKey(leaf.keys, key)
	if !found {
		return nil
	}
	out := make([]storage.RecordID, len(leaf.vals[i]))
	copy(out, leaf.vals[i])
	return out
}

// Contains reports whether the key exists in the tree.
func (t *Tree) Contains(key []byte) bool {
	return len(t.Search(key)) > 0
}

// findLeaf descends to the leaf that does or would contain key.
func (t *Tree) findLeaf(key []byte) *leafNode {
	n := t.root
	for {
		inner, ok := n.(*innerNode)
		if !ok {
			return n.(*leafNode)
		}
		i, found := findKey(inner.keys, key)
		if found {
			i++
		}
		n = inner.children[i]
	}
}

// Entry is one (key, records) pair produced by a range scan.
type Entry struct {
	Key     []byte
	Records []storage.RecordID
}

// Scan visits entries with low <= key < high in ascending key order and calls
// fn for each; fn returning false stops the scan. A nil low starts at the
// smallest key; a nil high scans to the end.
func (t *Tree) Scan(low, high []byte, fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.scanLocked(low, high, fn)
}

// scanLocked is Scan's body; the caller must hold t.mu.
func (t *Tree) scanLocked(low, high []byte, fn func(Entry) bool) {
	var leaf *leafNode
	start := 0
	if low == nil {
		leaf = t.leftmostLeaf()
	} else {
		leaf = t.findLeaf(low)
		start, _ = findKey(leaf.keys, low)
	}
	for leaf != nil {
		for i := start; i < len(leaf.keys); i++ {
			if high != nil && bytes.Compare(leaf.keys[i], high) >= 0 {
				return
			}
			recs := make([]storage.RecordID, len(leaf.vals[i]))
			copy(recs, leaf.vals[i])
			if !fn(Entry{Key: leaf.keys[i], Records: recs}) {
				return
			}
		}
		leaf = leaf.next
		start = 0
	}
}

// ScanAll visits every entry in ascending key order.
func (t *Tree) ScanAll(fn func(Entry) bool) { t.Scan(nil, nil, fn) }

// Range collects every record identifier with low <= key < high, in key order.
func (t *Tree) Range(low, high []byte) []storage.RecordID {
	var out []storage.RecordID
	t.Scan(low, high, func(e Entry) bool {
		out = append(out, e.Records...)
		return true
	})
	return out
}

// Min returns the smallest key in the tree, or nil when empty.
func (t *Tree) Min() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf := t.leftmostLeaf()
	for leaf != nil {
		if len(leaf.keys) > 0 {
			return leaf.keys[0]
		}
		leaf = leaf.next
	}
	return nil
}

func (t *Tree) leftmostLeaf() *leafNode {
	n := t.root
	for {
		inner, ok := n.(*innerNode)
		if !ok {
			return n.(*leafNode)
		}
		n = inner.children[0]
	}
}

// findKey binary-searches keys for key, returning the position where it is or
// would be inserted, and whether it was found.
func findKey(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(keys[mid], key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

func insertAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertValsAt(s [][]storage.RecordID, i int, v []storage.RecordID) [][]storage.RecordID {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertChildAt(s []node, i int, v node) []node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Validate checks structural invariants (key ordering within and across
// leaves, child counts in inner nodes) and returns an error describing the
// first violation. It exists for tests and the property-based suite.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var prev []byte
	count := 0
	leaf := t.leftmostLeaf()
	for leaf != nil {
		for _, k := range leaf.keys {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				return fmt.Errorf("btree: keys out of order: %q before %q", prev, k)
			}
			prev = k
			count++
		}
		leaf = leaf.next
	}
	keyCount := 0
	t.scanLocked(nil, nil, func(Entry) bool { keyCount++; return true })
	if keyCount != count {
		return fmt.Errorf("btree: scan saw %d keys, leaf chain has %d", keyCount, count)
	}
	return validateNode(t.root)
}

func validateNode(n node) error {
	inner, ok := n.(*innerNode)
	if !ok {
		return nil
	}
	if len(inner.children) != len(inner.keys)+1 {
		return fmt.Errorf("btree: inner node has %d keys but %d children", len(inner.keys), len(inner.children))
	}
	for _, c := range inner.children {
		if err := validateNode(c); err != nil {
			return err
		}
	}
	return nil
}
