package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/types"
)

func intKey(i int64) []byte { return types.EncodeKey(nil, types.NewInt(i)) }

func rid(n int) storage.RecordID {
	return storage.RecordID{Page: storage.PageID(n / 100), Slot: uint16(n % 100)}
}

func TestInsertSearchUnique(t *testing.T) {
	tr := New(true)
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(intKey(int64(i)), rid(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != 1000 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("expected a multi-level tree, height = %d", tr.Height())
	}
	for i := 0; i < 1000; i++ {
		got := tr.Search(intKey(int64(i)))
		if len(got) != 1 || got[0] != rid(i) {
			t.Fatalf("Search %d = %v", i, got)
		}
	}
	if got := tr.Search(intKey(5000)); got != nil {
		t.Errorf("Search missing = %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeyRejectedInUnique(t *testing.T) {
	tr := New(true)
	if err := tr.Insert(intKey(1), rid(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(intKey(1), rid(2)); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("expected ErrDuplicateKey, got %v", err)
	}
	if !tr.Unique() {
		t.Error("Unique() should be true")
	}
}

func TestNonUniquePostingLists(t *testing.T) {
	tr := New(false)
	key := types.EncodeKey(nil, types.NewString("Boston"))
	for i := 0; i < 10; i++ {
		if err := tr.Insert(key, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Same (key, rid) twice is a no-op.
	if err := tr.Insert(key, rid(3)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d, want 10", tr.Len())
	}
	got := tr.Search(key)
	if len(got) != 10 {
		t.Errorf("Search returned %d records", len(got))
	}
	if !tr.Contains(key) {
		t.Error("Contains should be true")
	}
}

func TestDelete(t *testing.T) {
	tr := New(false)
	for i := 0; i < 500; i++ {
		_ = tr.Insert(intKey(int64(i)), rid(i))
	}
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(intKey(int64(i)), rid(i)) {
			t.Fatalf("Delete %d returned false", i)
		}
	}
	if tr.Len() != 250 {
		t.Errorf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < 500; i++ {
		found := len(tr.Search(intKey(int64(i)))) > 0
		if found != (i%2 == 1) {
			t.Errorf("key %d found=%v", i, found)
		}
	}
	if tr.Delete(intKey(2), rid(2)) {
		t.Error("deleting an absent entry should return false")
	}
	if tr.Delete(intKey(3), rid(999)) {
		t.Error("deleting an absent rid should return false")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	tr := New(true)
	for i := 0; i < 1000; i++ {
		_ = tr.Insert(intKey(int64(i)), rid(i))
	}
	got := tr.Range(intKey(100), intKey(200))
	if len(got) != 100 {
		t.Fatalf("Range returned %d records, want 100", len(got))
	}
	for i, r := range got {
		if r != rid(100+i) {
			t.Errorf("Range[%d] = %v, want %v", i, r, rid(100+i))
		}
	}
	// Open-ended scans.
	if n := len(tr.Range(nil, intKey(10))); n != 10 {
		t.Errorf("Range(nil, 10) = %d", n)
	}
	if n := len(tr.Range(intKey(990), nil)); n != 10 {
		t.Errorf("Range(990, nil) = %d", n)
	}
	if n := len(tr.Range(nil, nil)); n != 1000 {
		t.Errorf("Range(nil, nil) = %d", n)
	}
	// Early stop.
	count := 0
	tr.Scan(nil, nil, func(Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop scanned %d", count)
	}
}

func TestScanOrderIsSorted(t *testing.T) {
	tr := New(true)
	perm := rand.New(rand.NewSource(42)).Perm(2000)
	for _, i := range perm {
		if err := tr.Insert(intKey(int64(i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	var prev []byte
	tr.ScanAll(func(e Entry) bool {
		if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], e.Key...)
		return true
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMin(t *testing.T) {
	tr := New(true)
	if tr.Min() != nil {
		t.Error("Min of empty tree should be nil")
	}
	_ = tr.Insert(intKey(50), rid(50))
	_ = tr.Insert(intKey(10), rid(10))
	_ = tr.Insert(intKey(90), rid(90))
	if !bytes.Equal(tr.Min(), intKey(10)) {
		t.Error("Min should be the smallest key")
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(false)
	cities := []string{"Boston", "Austin", "Chicago", "Denver", "Austin", "Erie"}
	for i, c := range cities {
		if err := tr.Insert(types.EncodeKey(nil, types.NewString(c)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Search(types.EncodeKey(nil, types.NewString("Austin"))); len(got) != 2 {
		t.Errorf("Austin posting list = %v", got)
	}
	// Range [B, D) should cover Boston and Chicago.
	low := types.EncodeKey(nil, types.NewString("B"))
	high := types.EncodeKey(nil, types.NewString("D"))
	if got := tr.Range(low, high); len(got) != 2 {
		t.Errorf("Range B-D = %v", got)
	}
}

func TestPropertyMatchesSortedMap(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New(false)
		ref := map[int64]int{}
		for i, k := range keys {
			_ = tr.Insert(intKey(int64(k)), rid(i))
			ref[int64(k)]++
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		// Every reference key must be found with the right cardinality.
		for k, n := range ref {
			if len(tr.Search(intKey(k))) != n {
				return false
			}
		}
		// Full scan must be sorted and complete.
		var sortedRef []int64
		for k := range ref {
			sortedRef = append(sortedRef, k)
		}
		sort.Slice(sortedRef, func(i, j int) bool { return sortedRef[i] < sortedRef[j] })
		i := 0
		okOrder := true
		tr.ScanAll(func(e Entry) bool {
			if i >= len(sortedRef) || !bytes.Equal(e.Key, intKey(sortedRef[i])) {
				okOrder = false
				return false
			}
			i++
			return true
		})
		return okOrder && i == len(sortedRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInsertDeleteInverse(t *testing.T) {
	f := func(keys []uint8) bool {
		tr := New(false)
		for i, k := range keys {
			_ = tr.Insert(intKey(int64(k)), rid(i))
		}
		for i, k := range keys {
			if !tr.Delete(intKey(int64(k)), rid(i)) {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLargeTreeHeightLogarithmic(t *testing.T) {
	tr := New(true)
	n := 100000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(int64(i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(); h > 5 {
		t.Errorf("height %d too large for %d keys with fanout %d", h, n, fanout)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Insert(intKey(int64(i)), rid(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	tr := New(true)
	for i := 0; i < 100000; i++ {
		_ = tr.Insert(intKey(int64(i)), rid(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Search(intKey(int64(i%100000))) == nil {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkRangeScan100(b *testing.B) {
	tr := New(true)
	for i := 0; i < 100000; i++ {
		_ = tr.Insert(intKey(int64(i)), rid(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64((i * 37) % 99900)
		if got := tr.Range(intKey(lo), intKey(lo+100)); len(got) != 100 {
			b.Fatalf("range returned %d", len(got))
		}
	}
}

func ExampleTree_Scan() {
	tr := New(true)
	for _, name := range []string{"ada", "bob", "cyd"} {
		_ = tr.Insert(types.EncodeKey(nil, types.NewString(name)), storage.RecordID{})
	}
	tr.ScanAll(func(e Entry) bool {
		fmt.Println(len(e.Records))
		return true
	})
	// Output:
	// 1
	// 1
	// 1
}
