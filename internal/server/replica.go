// Replica applier: the consumer end of WAL streaming. A Replica dials the
// primary, subscribes from its resume point, reassembles the pushed
// segments into the primary's byte-exact log, and continuously replays
// committed transactions into a local engine. The local engine serves
// read-only sessions through the ordinary server path; MVCC snapshots make
// each applied transaction visible atomically, so a reader on the replica
// sees exactly the prefix of primary history the applier has reached.
//
// Progress is tracked as two LSNs. applied is the processed-through
// frontier: every commit record ending at or below it has been applied, so
// it is the number the read-only server stamps on responses and the fleet
// router compares with the primary's durable frontier. resume is the safe
// resubscribe point — the applied frontier rolled back to the oldest
// still-open transaction's BEGIN, because an open transaction's buffered
// records live only in memory and must be re-streamed after a reconnect.
// Re-received commits are skipped by their end offset, which is what makes
// killing and restarting the stream (or the whole replica process, which
// simply re-streams from LSN 0 into a fresh engine) idempotent.
package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/server/client"
	"repro/internal/txn"
)

// Replica streams a primary's WAL into a local engine.
type Replica struct {
	db   *engine.Database
	addr string

	mu      sync.Mutex
	stream  *client.WALStream
	stopped bool
	done    chan struct{}

	// applied is the processed-through LSN; resume the safe resubscribe
	// point. appliedCommitEnd guards against re-applying a commit that a
	// resubscribe re-delivers; it only ever grows.
	applied          atomic.Uint64
	resume           atomic.Uint64
	appliedCommitEnd int64

	txnsApplied  atomic.Uint64
	txnsSkipped  atomic.Uint64
	recsSeen     atomic.Uint64
	connects     atomic.Uint64
	streamErrors atomic.Uint64
	lastErr      atomic.Value
}

// ReplicaStats is a snapshot of the applier's progress.
type ReplicaStats struct {
	// AppliedLSN is the processed-through log position; ResumeLSN is where
	// the next (re)subscribe would start.
	AppliedLSN uint64
	ResumeLSN  uint64
	// TxnsApplied counts primary transactions replayed locally; TxnsSkipped
	// counts commits a resubscribe re-delivered that were already applied.
	TxnsApplied uint64
	TxnsSkipped uint64
	// RecordsSeen counts log records scanned (including those of
	// transactions still open on the primary).
	RecordsSeen uint64
	// Connects counts successful subscriptions; StreamErrors counts streams
	// that ended in an error (each is followed by a backoff and reconnect).
	Connects     uint64
	StreamErrors uint64
	// LastError is the most recent stream error's text, if any.
	LastError string
}

// NewReplica creates an applier that will stream from the primary at addr
// into db. The database should be fresh (the applier replays from LSN 0) and
// must not take local writes — run the serving Server with SetReadOnly.
func NewReplica(db *engine.Database, primaryAddr string) *Replica {
	return &Replica{db: db, addr: primaryAddr, done: make(chan struct{})}
}

// Start launches the streaming loop. It returns immediately; the replica
// connects (and reconnects, with backoff) in the background until Stop.
func (r *Replica) Start() {
	go r.run()
}

// Stop tears the stream down and waits for the loop to exit.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.stopped = true
	if r.stream != nil {
		r.stream.Close() // unblocks the applier's blocking Next
	}
	r.mu.Unlock()
	<-r.done
}

// AppliedLSN returns the processed-through log position: every commit at or
// below it is visible to local readers. Feed it to Server.SetLSNSource so
// the read-only server stamps it on responses.
func (r *Replica) AppliedLSN() uint64 { return r.applied.Load() }

// Stats returns a snapshot of the applier's counters.
func (r *Replica) Stats() ReplicaStats {
	st := ReplicaStats{
		AppliedLSN:   r.applied.Load(),
		ResumeLSN:    r.resume.Load(),
		TxnsApplied:  r.txnsApplied.Load(),
		TxnsSkipped:  r.txnsSkipped.Load(),
		RecordsSeen:  r.recsSeen.Load(),
		Connects:     r.connects.Load(),
		StreamErrors: r.streamErrors.Load(),
	}
	if v := r.lastErr.Load(); v != nil {
		st.LastError = v.(error).Error()
	}
	return st
}

func (r *Replica) stopping() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

func (r *Replica) setStream(ws *client.WALStream) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return false
	}
	r.stream = ws
	return true
}

func (r *Replica) clearStream() {
	r.mu.Lock()
	if r.stream != nil {
		r.stream.Close()
		r.stream = nil
	}
	r.mu.Unlock()
}

// run is the reconnect loop: stream until the connection dies, back off,
// resubscribe from the resume point. Backoff doubles from 50ms to 1s and
// resets whenever a stream made progress.
func (r *Replica) run() {
	defer close(r.done)
	const backoffMin, backoffMax = 50 * time.Millisecond, time.Second
	backoff := backoffMin
	for !r.stopping() {
		progressed, err := r.streamOnce()
		if r.stopping() {
			return
		}
		if err != nil {
			r.streamErrors.Add(1)
			r.lastErr.Store(err)
		}
		if progressed {
			backoff = backoffMin
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// streamOnce runs one subscription to exhaustion. It reports whether any
// record was processed (for backoff reset) and why the stream ended.
func (r *Replica) streamOnce() (progressed bool, err error) {
	conn, err := client.Dial(r.addr)
	if err != nil {
		return false, err
	}
	start := r.resume.Load()
	ws, err := conn.Subscribe(start)
	if err != nil {
		conn.Close()
		return false, err
	}
	if !r.setStream(ws) {
		ws.Close()
		return false, nil
	}
	defer r.clearStream()
	r.connects.Add(1)

	// pending buffers each open primary transaction's records; beginOff
	// remembers where its BEGIN frame started, the floor for resume.
	pending := map[uint64][]txn.Record{}
	beginOff := map[uint64]int64{}
	sc := txn.NewFrameScanner(&segmentReader{stream: ws, next: int64(start)}, int64(start))
	for {
		rec, startOff, end, err := sc.Next()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF // a live stream has no clean end
			}
			return progressed, err
		}
		progressed = true
		r.recsSeen.Add(1)
		switch rec.Kind {
		case txn.RecordBegin:
			pending[rec.Txn] = nil
			beginOff[rec.Txn] = startOff
			r.advance(end, beginOff)
		case txn.RecordCommit:
			recs := pending[rec.Txn]
			delete(pending, rec.Txn)
			delete(beginOff, rec.Txn)
			if end <= r.appliedCommitEnd {
				r.txnsSkipped.Add(1) // re-delivered by a resubscribe
			} else {
				if len(recs) > 0 {
					if aerr := r.db.ApplyReplicated(recs); aerr != nil {
						return progressed, aerr
					}
				}
				r.appliedCommitEnd = end
				r.txnsApplied.Add(1)
			}
			r.advance(end, beginOff)
			ws.Ack(r.applied.Load())
		case txn.RecordAbort:
			delete(pending, rec.Txn)
			delete(beginOff, rec.Txn)
			r.advance(end, beginOff)
		case txn.RecordCheckpoint:
			// Checkpoints compress recovery for the primary; a replica's
			// state is already live, so the image is pure skip.
			r.advance(end, beginOff)
			ws.Ack(r.applied.Load())
		default:
			if _, ok := pending[rec.Txn]; !ok {
				// A record for a transaction whose BEGIN we never saw can
				// only be one the resume point already covers.
				r.advance(end, beginOff)
				continue
			}
			pending[rec.Txn] = append(pending[rec.Txn], rec)
			r.advance(end, beginOff)
		}
	}
}

// advance publishes the processed-through frontier (end) and recomputes the
// resume point: end itself when no transaction is open, else the oldest
// open transaction's BEGIN offset.
func (r *Replica) advance(end int64, beginOff map[uint64]int64) {
	for {
		prev := r.applied.Load()
		if uint64(end) <= prev || r.applied.CompareAndSwap(prev, uint64(end)) {
			break
		}
	}
	resume := end
	for _, off := range beginOff {
		if off < resume {
			resume = off
		}
	}
	r.resume.Store(uint64(resume))
}

// segmentReader turns the pushed WALSegment frames back into the primary's
// contiguous log byte stream, verifying that each segment starts exactly
// where the previous one ended.
type segmentReader struct {
	stream *client.WALStream
	next   int64
	buf    []byte
}

func (sr *segmentReader) Read(p []byte) (int, error) {
	for len(sr.buf) == 0 {
		seg, err := sr.stream.Next()
		if err != nil {
			return 0, err
		}
		if int64(seg.StartLSN) != sr.next {
			return 0, fmt.Errorf("server: wal stream gap: got segment at %d, expected %d", seg.StartLSN, sr.next)
		}
		sr.buf = seg.Data
		sr.next += int64(len(seg.Data))
	}
	n := copy(p, sr.buf)
	sr.buf = sr.buf[n:]
	return n, nil
}
