package client_test

import (
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

// startPrimaryServer serves a file-backed database that can stream its WAL.
func startPrimaryServer(t *testing.T) (*engine.Database, string) {
	t.Helper()
	wal := filepath.Join(t.TempDir(), "primary.wal")
	db, err := engine.Open(engine.Options{WALPath: wal, LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, ln.Addr().String()
}

// startReplicaServer runs the full replica stack against primaryAddr.
func startReplicaServer(t *testing.T, primaryAddr string) (*server.Replica, string) {
	t.Helper()
	db, err := engine.Open(engine.Options{LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep := server.NewReplica(db, primaryAddr)
	srv := server.New(db)
	srv.SetReadOnly(true)
	srv.SetLSNSource(rep.AppliedLSN)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	rep.Start()
	t.Cleanup(func() {
		rep.Stop()
		srv.Close()
		db.Close()
	})
	return rep, ln.Addr().String()
}

// waitApplied blocks until the replica reaches the primary's current durable
// frontier.
func waitApplied(t *testing.T, primary *engine.Database, rep *server.Replica) {
	t.Helper()
	target := uint64(primary.Transactions().WAL().DurableLSN())
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedLSN() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d of %d: %+v", rep.AppliedLSN(), target, rep.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFleetRoutesReadsToReplicas(t *testing.T) {
	db, primaryAddr := startPrimaryServer(t)
	repA, addrA := startReplicaServer(t, primaryAddr)
	repB, addrB := startReplicaServer(t, primaryAddr)

	f := client.NewFleet(primaryAddr, []string{addrA, addrB}, client.FleetConfig{
		ProbeInterval: -1, // tests drive freshness by hand
	})
	defer f.Close()

	// Writes pin to the primary, and observing them teaches the fleet the
	// primary's frontier.
	w, err := f.GetWrite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("INSERT INTO kv (k, v) VALUES (1, 'one')"); err != nil {
		t.Fatal(err)
	}
	w.Release()
	if f.PrimaryLSN() == 0 {
		t.Fatal("GetWrite traffic did not teach the fleet the primary LSN")
	}

	waitApplied(t, db, repA)
	waitApplied(t, db, repB)
	f.Probe()

	// Reads now spread across both replicas.
	for i := 0; i < 6; i++ {
		h, replica, err := f.GetRead()
		if err != nil {
			t.Fatal(err)
		}
		if !replica {
			t.Fatalf("read %d did not land on a replica (stats %+v)", i, f.Stats())
		}
		if !h.Conn().IsReplica() {
			t.Errorf("read %d: routed connection does not identify as a replica", i)
		}
		rows, err := h.Query("SELECT v FROM kv WHERE k = ?", types.NewInt(1))
		if err != nil {
			t.Fatal(err)
		}
		var v string
		for rows.Next() {
			v = rows.Row()[0].Str()
		}
		rows.Close()
		h.Release()
		if v != "one" {
			t.Fatalf("read %d: v = %q, want \"one\"", i, v)
		}
	}
	st := f.Stats()
	if st.ReplicaReads != 6 || st.PrimaryFallbacks != 0 {
		t.Errorf("stats = %+v, want 6 replica reads and no fallbacks", st)
	}
	for i, lsn := range st.ReplicaLSNs {
		if lsn == 0 {
			t.Errorf("replica %d LSN high-water still 0 after probe", i)
		}
	}
}

func TestFleetFallsBackWhenAllReplicasStale(t *testing.T) {
	db, primaryAddr := startPrimaryServer(t)
	rep, replicaAddr := startReplicaServer(t, primaryAddr)

	f := client.NewFleet(primaryAddr, []string{replicaAddr}, client.FleetConfig{
		MaxLagBytes:   1, // almost any write pushes the replica out of bounds
		ProbeInterval: -1,
	})
	defer f.Close()

	w, err := f.GetWrite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	w.Release()
	waitApplied(t, db, rep)
	f.Probe()

	// Freeze the applier, then write past the bound: the replica's applied
	// LSN stops while the primary's frontier moves on.
	rep.Stop()
	w, err = f.GetWrite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("INSERT INTO kv (k, v) VALUES (1, 'after-freeze')"); err != nil {
		t.Fatal(err)
	}
	w.Release()
	f.Probe()

	h, replica, err := f.GetRead()
	if err != nil {
		t.Fatal(err)
	}
	if replica {
		t.Fatalf("read landed on a replica lagging past the bound (stats %+v)", f.Stats())
	}
	// The primary fallback must see the write the replica has not applied.
	rows, err := h.Query("SELECT v FROM kv WHERE k = ?", types.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	var v string
	for rows.Next() {
		v = rows.Row()[0].Str()
	}
	rows.Close()
	h.Release()
	if v != "after-freeze" {
		t.Errorf("fallback read v = %q, want \"after-freeze\"", v)
	}
	st := f.Stats()
	if st.PrimaryFallbacks == 0 || st.StaleSkips == 0 {
		t.Errorf("stats = %+v, want a stale skip and a primary fallback", st)
	}
}

// TestFleetBoundedStaleness hammers writes and routed reads concurrently and
// asserts the routing contract: every read lands on a server whose reported
// LSN is within MaxLagBytes of the primary frontier the fleet knew when the
// read was routed.
func TestFleetBoundedStaleness(t *testing.T) {
	db, primaryAddr := startPrimaryServer(t)
	rep, replicaAddr := startReplicaServer(t, primaryAddr)

	const maxLag = 4096
	f := client.NewFleet(primaryAddr, []string{replicaAddr}, client.FleetConfig{
		MaxLagBytes:   maxLag,
		ProbeInterval: 5 * time.Millisecond,
	})
	defer f.Close()

	w, err := f.GetWrite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec("INSERT INTO kv (k, v) VALUES (1, 'x')"); err != nil {
		t.Fatal(err)
	}
	w.Release()
	waitApplied(t, db, rep)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h, err := f.GetWrite()
			if err != nil {
				return
			}
			_, err = h.Exec("UPDATE kv SET v = 'y' WHERE k = 1")
			h.Release()
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	violations := 0
	for i := 0; i < 200; i++ {
		required := f.PrimaryLSN() // what the fleet knew before routing
		h, _, err := f.GetRead()
		if err != nil {
			t.Fatal(err)
		}
		rows, err := h.Query("SELECT v FROM kv WHERE k = ?", types.NewInt(1))
		if err != nil {
			// The routed replica may briefly refuse nothing — reads must
			// simply not error under lag.
			t.Fatalf("routed read %d: %v", i, err)
		}
		for rows.Next() {
		}
		rows.Close()
		got := h.Conn().LastLSN()
		h.Release()
		if got+maxLag < required {
			violations++
			t.Errorf("read %d: server LSN %d lags required %d by more than %d", i, got, required, maxLag)
		}
	}
	close(stop)
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d bounded-staleness violations", violations)
	}
}

func TestFleetNoReplicasDegeneratesToPrimary(t *testing.T) {
	_, primaryAddr := startPrimaryServer(t)
	f := client.NewFleet(primaryAddr, nil, client.FleetConfig{ProbeInterval: -1})
	defer f.Close()
	h, replica, err := f.GetRead()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if replica {
		t.Error("replica=true from a fleet with no replicas")
	}
	if _, err := h.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
}

// TestQueryPipelinesOnV22 checks the latency fast path: a parameterised
// SELECT over a v2.2 connection merges Bind+Execute into one round trip, and
// a bind failure still surfaces cleanly with the connection usable after.
func TestQueryPipelinesOnV22(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES (1, 'one')"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("SELECT v FROM kv WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for i := 0; i < 3; i++ {
		rows, err := st.Query(types.NewInt(1))
		if err != nil {
			t.Fatal(err)
		}
		var v string
		for rows.Next() {
			v = rows.Row()[0].Str()
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if v != "one" {
			t.Fatalf("pipelined query %d: v = %q, want \"one\"", i, v)
		}
	}
	if got := c.Pipelined(); got != 3 {
		t.Errorf("Pipelined() = %d, want 3", got)
	}

	// A bind error (wrong arity) must fail the query but leave the
	// connection in sync for the next operation.
	if _, err := st.Query(types.NewInt(1), types.NewInt(2)); err == nil {
		t.Fatal("Query with wrong arity succeeded")
	} else if !strings.Contains(err.Error(), "parameter") && !strings.Contains(err.Error(), "bind") {
		t.Logf("bind failure surfaced as: %v", err)
	}
	rows, err := st.Query(types.NewInt(1))
	if err != nil {
		t.Fatalf("query after failed pipelined bind: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 1 {
		t.Errorf("rows after recovery = %d, want 1", n)
	}

	// DML never pipelines: Exec still works and the counter stays put.
	before := c.Pipelined()
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	if c.Pipelined() != before {
		t.Error("a write went through the pipelined path")
	}
}

// TestPoolHealthCheckAfterConcurrent races many workers through checkout
// with the ping-skip window enabled — the HealthCheckAfter satellite. The
// invariants: no checkout errors, no lost tokens (all workers finish), and
// released connections keep their recent-use vouching consistent.
func TestPoolHealthCheckAfterConcurrent(t *testing.T) {
	_, _, addr := startServer(t)
	p := client.NewPool(addr, client.PoolConfig{
		Size:             4,
		HealthCheckAfter: 50 * time.Millisecond,
	})
	defer p.Close()

	// Seed a table through the pool.
	h, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	h.Release()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h, err := p.Get()
				if err != nil {
					t.Errorf("checkout: %v", err)
					return
				}
				rows, err := h.Query("SELECT id FROM t")
				if err != nil {
					t.Errorf("query: %v", err)
					h.Release()
					return
				}
				for rows.Next() {
				}
				rows.Close()
				h.Release()
			}
		}()
	}
	wg.Wait()

	st := p.Stats()
	if st.Checkouts != 16*50+1 {
		t.Errorf("checkouts = %d, want %d", st.Checkouts, 16*50+1)
	}
	if st.Discards != 0 {
		t.Errorf("discards = %d on a healthy server, want 0", st.Discards)
	}
	// Inside the vouching window nearly every checkout should skip the ping;
	// the only guaranteed-pinged checkouts are those past the window, which a
	// tight loop never produces. HealthCheckFailures must certainly be zero.
	if st.HealthCheckFailures != 0 {
		t.Errorf("health-check failures = %d, want 0", st.HealthCheckFailures)
	}
}
