// Pipelined Bind+Execute. A SELECT with arguments normally costs two round
// trips: MsgBind, wait for MsgOK, MsgExecute, wait for the cursor. The
// server processes frames strictly in order, so a client that already knows
// both messages can write them back to back, flush once, and read the two
// responses — halving per-query latency, which is what fleet routing's many
// small point reads are made of.
//
// Only pure SELECTs pipeline (the v2.2 isQuery flag from Prepare). If Bind
// fails, the queued Execute still runs with the statement's previous
// bindings; that is harmless for a side-effect-free read — the client
// discards its cursor and surfaces the bind error — but would be a silent
// wrong-write for DML, so everything else keeps the two-step protocol.
package client

import (
	"context"
	"fmt"

	"repro/internal/server/wire"
	"repro/internal/types"
)

// queryPipelined is Query's fast path: Bind and Execute in one round trip.
func (st *Stmt) queryPipelined(args []types.Value) (*Rows, error) {
	if st.closed {
		return nil, fmt.Errorf("client: statement is closed")
	}
	c := st.conn
	// Positional args override any accumulated named bindings.
	st.named = nil
	st.namedSet = nil
	var bind wire.Buffer
	bind.Uint32(st.id)
	bind.Tuple(types.Tuple(args))
	var exec wire.Buffer
	exec.Uint32(st.id)

	bindType, bindCur, execType, execCur, err := c.pipeline(
		wire.MsgBind, bind.B, wire.MsgExecute, exec.B)
	if err != nil {
		return nil, err
	}

	var bindErr error
	switch bindType {
	case wire.MsgOK:
		c.noteLSNTail(bindCur)
	case wire.MsgErr:
		bindErr = errFromCursor(bindCur)
	default:
		c.broken = true
		return nil, fmt.Errorf("client: expected 0x%02x response to Bind, got 0x%02x", wire.MsgOK, bindType)
	}

	switch execType {
	case wire.MsgErr:
		if bindErr != nil {
			return nil, bindErr
		}
		return nil, errFromCursor(execCur)
	case wire.MsgCursor:
		rows, rerr := st.rowsFromCursor(execCur)
		if bindErr != nil {
			// The Execute ran against stale bindings; drop its cursor and
			// report the failure that made it meaningless.
			if rerr == nil {
				rows.Close()
			}
			return nil, bindErr
		}
		if rerr != nil {
			return nil, rerr
		}
		c.pipelined++
		return rows, nil
	case wire.MsgResult:
		// A pure SELECT always opens a cursor; Result here means the server
		// and client disagree about what this statement is.
		if bindErr != nil {
			return nil, bindErr
		}
		return nil, fmt.Errorf("client: statement did not return rows")
	default:
		c.broken = true
		return nil, fmt.Errorf("client: unexpected 0x%02x response to Execute", execType)
	}
}

// pipeline writes two frames with a single flush and reads both responses in
// order. MsgErr responses are returned as-is (not converted to errors): with
// two requests in flight the caller must see both outcomes to keep the
// stream in sync.
func (c *Conn) pipeline(t1 byte, p1 []byte, t2 byte, p2 []byte) (r1 byte, cur1 *wire.Cursor, r2 byte, cur2 *wire.Cursor, err error) {
	if c.closed {
		return 0, nil, 0, nil, fmt.Errorf("client: connection is closed")
	}
	if len(p1)+1 > wire.MaxFrame || len(p2)+1 > wire.MaxFrame {
		return 0, nil, 0, nil, fmt.Errorf("client: message exceeds the %d-byte frame limit", wire.MaxFrame)
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return 0, nil, 0, nil, err
		}
		stop := context.AfterFunc(c.ctx, func() { c.nc.Close() })
		defer stop()
	}
	if err := wire.WriteFrame(c.w, t1, p1); err != nil {
		c.broken = true
		return 0, nil, 0, nil, c.ctxError(err)
	}
	if err := wire.WriteFrame(c.w, t2, p2); err != nil {
		c.broken = true
		return 0, nil, 0, nil, c.ctxError(err)
	}
	if err := c.w.Flush(); err != nil {
		c.broken = true
		return 0, nil, 0, nil, c.ctxError(err)
	}
	r1, resp1, err := wire.ReadFrame(c.r)
	if err != nil {
		c.broken = true
		return 0, nil, 0, nil, c.ctxError(err)
	}
	r2, resp2, err := wire.ReadFrame(c.r)
	if err != nil {
		c.broken = true
		return 0, nil, 0, nil, c.ctxError(err)
	}
	return r1, wire.NewCursor(resp1), r2, wire.NewCursor(resp2), nil
}
