package client

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// DefaultPoolSize bounds a pool that was configured with a zero size.
const DefaultPoolSize = 4

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = fmt.Errorf("client: pool is closed")

// PoolConfig tunes a Pool.
type PoolConfig struct {
	// Size is the maximum number of open connections (DefaultPoolSize when
	// zero). Get blocks while all of them are checked out, so N workers
	// multiplex over K sockets instead of paying N dials.
	Size int
	// FetchSize is the cursor fetch batch size for the pool's connections.
	FetchSize int
	// HealthCheckAfter skips the checkout ping for connections that were
	// released less than this long ago: a connection in steady rotation is
	// vouched for by its own recent traffic, so high-frequency checkout
	// patterns (one checkout per operation, as the typed sqlair layer does)
	// do not pay a ping round trip per operation. Zero pings every checkout.
	// A connection that died inside the window is still caught — the first
	// operation on it fails, the handle is discarded at Release, and the
	// caller retries on a fresh connection.
	HealthCheckAfter time.Duration
	// dial stands in for DialWith so tests can inject failures.
	dial func(addr string) (*Conn, error)
}

// Pool is a bounded set of wowserver connections shared by many workers.
// Checkout (Get) hands out an idle connection after a liveness check — a
// connection that died while idle is discarded and replaced, so callers never
// see a stale socket — or dials a fresh one while the pool is under its size
// limit. Each pooled connection keeps the statements it has prepared, keyed
// by SQL text, so a worker re-running a shape the connection has seen skips
// the Prepare round trip entirely.
//
// A checked-out PooledConn is single-goroutine, like the Conn it wraps; the
// Pool itself is safe for concurrent Get/Put from any number of workers.
type Pool struct {
	addr string
	cfg  PoolConfig

	// tokens is a counting semaphore: a buffered channel holding one slot
	// per allowed connection. Acquire by send, release by receive.
	tokens chan struct{}
	done   chan struct{}

	mu     sync.Mutex
	idle   []*poolConn
	closed bool

	dials       atomic.Uint64
	checkouts   atomic.Uint64
	idleReuses  atomic.Uint64
	stmtHits    atomic.Uint64
	healthFails atomic.Uint64
	discards    atomic.Uint64

	// lsnHW is the highest durable LSN any of the pool's connections has
	// seen the server report (v2.2). For a pool pointed at a replica it is
	// the pool's best knowledge of that replica's applied position — the
	// number fleet routing compares against the primary's frontier.
	lsnHW atomic.Uint64
}

// PoolStats summarises the pool's counters.
type PoolStats struct {
	// Dials counts connections opened; Checkouts counts Gets served;
	// IdleReuses counts checkouts satisfied by an idle connection.
	Dials      uint64
	Checkouts  uint64
	IdleReuses uint64
	// StmtCacheHits counts statement preparations satisfied by a
	// connection's prepared-statement cache (no Prepare round trip).
	StmtCacheHits uint64
	// HealthCheckFailures counts idle connections that failed the checkout
	// ping and were discarded; Discards counts connections dropped for any
	// reason (failed ping, transport error, open-transaction rollback
	// failure).
	HealthCheckFailures uint64
	Discards            uint64
	// Idle is the current idle-connection count.
	Idle int
	// LSNHighWater is the highest durable LSN the pool's connections have
	// seen the server report (0 against pre-v2.2 servers).
	LSNHighWater uint64
}

// poolConn is one pooled connection plus its prepared-statement cache.
type poolConn struct {
	conn  *Conn
	stmts map[string]*Stmt
	inTxn bool
	// lastUsed is when the connection was last released; HealthCheckAfter
	// measures idleness against it.
	lastUsed time.Time
}

// NewPool creates a pool over the server address. No connection is dialed
// until the first Get.
func NewPool(addr string, cfg PoolConfig) *Pool {
	if cfg.Size <= 0 {
		cfg.Size = DefaultPoolSize
	}
	if cfg.dial == nil {
		fetch := cfg.FetchSize
		cfg.dial = func(addr string) (*Conn, error) {
			return DialWith(addr, DialOptions{FetchSize: fetch})
		}
	}
	return &Pool{
		addr:   addr,
		cfg:    cfg,
		tokens: make(chan struct{}, cfg.Size),
		done:   make(chan struct{}),
	}
}

// Size returns the pool's connection limit.
func (p *Pool) Size() int { return p.cfg.Size }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	return PoolStats{
		Dials:               p.dials.Load(),
		Checkouts:           p.checkouts.Load(),
		IdleReuses:          p.idleReuses.Load(),
		StmtCacheHits:       p.stmtHits.Load(),
		HealthCheckFailures: p.healthFails.Load(),
		Discards:            p.discards.Load(),
		Idle:                idle,
		LSNHighWater:        p.lsnHW.Load(),
	}
}

// LSNHighWater returns the highest durable LSN any of the pool's
// connections has seen the server report. It only advances when traffic
// (or a Ping) touches the server, so an idle pool's view goes stale — the
// Fleet's background prober exists to keep it moving.
func (p *Pool) LSNHighWater() uint64 { return p.lsnHW.Load() }

// noteLSN folds a connection's latest observed LSN into the pool's
// high-water mark.
func (p *Pool) noteLSN(c *Conn) {
	lsn := c.LastLSN()
	for {
		prev := p.lsnHW.Load()
		if lsn <= prev || p.lsnHW.CompareAndSwap(prev, lsn) {
			return
		}
	}
}

// Get checks a connection out of the pool, blocking while all of them are in
// use. Idle connections are health-checked (one Ping round trip) before they
// are handed out; a dead one is discarded and a fresh connection dialed in
// its place. Release the result with PooledConn.Release.
func (p *Pool) Get() (*PooledConn, error) { return p.GetContext(context.Background()) }

// GetContext is Get bounded by a context: a cancellation (or deadline) while
// waiting for a free slot stops the wait, and the checkout health check runs
// under the context too, so a deadline covers the whole acquisition — wait,
// ping and dial alike. The context governs only the checkout; the returned
// connection is not bound to it (use Conn().SetContext for per-operation
// cancellation after checkout).
func (p *Pool) GetContext(ctx context.Context) (*PooledConn, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.done:
		return nil, ErrPoolClosed
	case p.tokens <- struct{}{}:
	}
	for {
		if err := ctx.Err(); err != nil {
			<-p.tokens
			return nil, err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			<-p.tokens
			return nil, ErrPoolClosed
		}
		var pc *poolConn
		if n := len(p.idle); n > 0 {
			pc = p.idle[n-1]
			p.idle = p.idle[:n-1]
		}
		p.mu.Unlock()
		if pc == nil {
			conn, err := p.cfg.dial(p.addr)
			if err != nil {
				<-p.tokens
				return nil, err
			}
			p.dials.Add(1)
			p.checkouts.Add(1)
			return &PooledConn{pool: p, pc: &poolConn{conn: conn, stmts: make(map[string]*Stmt)}}, nil
		}
		if !pc.conn.Healthy() || (p.needsPing(pc) && p.ping(ctx, pc) != nil) {
			p.healthFails.Add(1)
			p.discard(pc)
			continue // try the next idle connection, or dial
		}
		p.checkouts.Add(1)
		p.idleReuses.Add(1)
		return &PooledConn{pool: p, pc: pc}, nil
	}
}

// needsPing reports whether an idle connection has been out of rotation long
// enough that checkout should probe it before handing it out.
func (p *Pool) needsPing(pc *poolConn) bool {
	if p.cfg.HealthCheckAfter <= 0 {
		return true
	}
	return time.Since(pc.lastUsed) >= p.cfg.HealthCheckAfter
}

// ping health-checks an idle connection under the checkout's context, so a
// deadline bounds the probe of a half-dead socket instead of hanging the Get.
func (p *Pool) ping(ctx context.Context, pc *poolConn) error {
	pc.conn.SetContext(ctx)
	err := pc.conn.Ping()
	pc.conn.SetContext(nil)
	return err
}

// With checks a connection out, runs fn and releases it — the convenience
// shape for workers whose whole unit of work fits one function.
func (p *Pool) With(fn func(*PooledConn) error) error {
	return p.WithContext(context.Background(), fn)
}

// WithContext is With over GetContext: the context bounds the checkout and is
// bound to the connection for fn's duration, so cancellation interrupts
// round trips fn makes.
func (p *Pool) WithContext(ctx context.Context, fn func(*PooledConn) error) error {
	h, err := p.GetContext(ctx)
	if err != nil {
		return err
	}
	defer h.Release()
	if ctx.Done() != nil {
		h.pc.conn.SetContext(ctx)
		defer h.pc.conn.SetContext(nil)
	}
	return fn(h)
}

// discard closes a connection without returning it to the idle list.
func (p *Pool) discard(pc *poolConn) {
	p.discards.Add(1)
	pc.conn.Close()
}

// Close closes every idle connection and fails all future Gets. Connections
// currently checked out are closed when released.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.done)
	for _, pc := range idle {
		pc.conn.Close()
	}
	return nil
}

// PooledConn is one checked-out connection. It exposes the connection's API
// with the pool's prepared-statement reuse layered on top: Prepare (and the
// Query/Exec/ExecBatch conveniences) consult the connection's statement
// cache first, so repeating shapes over a pooled connection costs no Prepare
// round trips after the first.
type PooledConn struct {
	pool     *Pool
	pc       *poolConn
	released bool
}

// errReleased guards every handle method: a PooledConn kept past its Release
// must never touch the connection, which by then belongs to the idle list or
// to another worker.
var errReleased = fmt.Errorf("client: pooled connection already released")

// use validates that the handle still owns its connection.
func (h *PooledConn) use() error {
	if h.released {
		return errReleased
	}
	return nil
}

// Conn exposes the underlying connection for calls the handle does not wrap
// (SetFetchSize, ProtocolVersion, raw cursors). It returns nil after Release.
func (h *PooledConn) Conn() *Conn {
	if h.released {
		return nil
	}
	return h.pc.conn
}

// maxCachedStmts bounds one pooled connection's statement cache. Past it an
// arbitrary cached statement is closed and replaced, so a workload cycling
// through unbounded distinct SQL text (generated table names, say) cannot
// grow the cache — on either end of the wire — without limit.
const maxCachedStmts = 64

// Prepare returns the connection's cached statement for the text, preparing
// and caching it on first use. The statement is owned by the pool: do not
// Close it — it stays live for the next worker that checks this connection
// out.
func (h *PooledConn) Prepare(text string) (*Stmt, error) {
	if err := h.use(); err != nil {
		return nil, err
	}
	if st, ok := h.pc.stmts[text]; ok {
		h.pool.stmtHits.Add(1)
		return st, nil
	}
	if len(h.pc.stmts) >= maxCachedStmts {
		for evictText, evictStmt := range h.pc.stmts {
			delete(h.pc.stmts, evictText)
			evictStmt.Close()
			break
		}
	}
	st, err := h.pc.conn.Prepare(text)
	if err != nil {
		return nil, err
	}
	h.pc.stmts[text] = st
	return st, nil
}

// Query prepares (or reuses) the statement and runs it with the args.
// Close the returned cursor before releasing the connection.
func (h *PooledConn) Query(text string, args ...types.Value) (*Rows, error) {
	st, err := h.Prepare(text)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// Exec prepares (or reuses) the statement and executes it with the args.
func (h *PooledConn) Exec(text string, args ...types.Value) (*Result, error) {
	st, err := h.Prepare(text)
	if err != nil {
		return nil, err
	}
	return st.Exec(args...)
}

// ExecBatch prepares (or reuses) the statement and array-binds the rows in
// one round trip.
func (h *PooledConn) ExecBatch(text string, rows [][]types.Value) (*Result, error) {
	st, err := h.Prepare(text)
	if err != nil {
		return nil, err
	}
	return st.ExecBatch(rows)
}

// Begin opens an explicit transaction on the pooled connection's session.
// Commit or roll it back before Release; a transaction still open at Release
// is rolled back so the next worker starts clean.
func (h *PooledConn) Begin() error {
	if err := h.use(); err != nil {
		return err
	}
	if err := h.pc.conn.Begin(); err != nil {
		return err
	}
	h.pc.inTxn = true
	return nil
}

// Commit commits the open transaction.
func (h *PooledConn) Commit() error {
	if err := h.use(); err != nil {
		return err
	}
	err := h.pc.conn.Commit()
	if err == nil {
		h.pc.inTxn = false
	}
	return err
}

// Rollback rolls the open transaction back.
func (h *PooledConn) Rollback() error {
	if err := h.use(); err != nil {
		return err
	}
	err := h.pc.conn.Rollback()
	if err == nil {
		h.pc.inTxn = false
	}
	return err
}

// Release returns the connection to the pool. A connection that hit a
// transport error is discarded instead; one released with a transaction
// still open is rolled back first (and discarded if the rollback fails).
// Release is idempotent.
func (h *PooledConn) Release() {
	if h.released {
		return
	}
	h.released = true
	p := h.pool
	pc := h.pc
	defer func() { <-p.tokens }()
	p.noteLSN(pc.conn)
	if !pc.conn.Healthy() {
		p.discard(pc)
		return
	}
	if pc.inTxn {
		if err := pc.conn.Rollback(); err != nil {
			p.discard(pc)
			return
		}
		pc.inTxn = false
	}
	pc.lastUsed = time.Now()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.discard(pc)
		return
	}
	p.idle = append(p.idle, pc)
	p.mu.Unlock()
}
