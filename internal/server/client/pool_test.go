package client_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/types"
)

func startServer(t *testing.T) (*engine.Database, *server.Server, string) {
	t.Helper()
	db, err := engine.Open(engine.Options{LockTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		db.Close()
	})
	return db, srv, ln.Addr().String()
}

func seedTable(t *testing.T, addr string, n int) {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE customers (id INT PRIMARY KEY, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("INSERT INTO customers (id, name) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{types.NewInt(int64(i + 1)), types.NewString(fmt.Sprintf("Customer %d", i+1))}
	}
	if _, err := st.ExecBatch(rows); err != nil {
		t.Fatal(err)
	}
}

// TestPoolMultiplexesWorkersOverFewSockets: N workers over a K-sized pool
// must open at most K connections, reuse idle ones, and hit the per-connection
// prepared-statement cache after the warmup round.
func TestPoolMultiplexesWorkersOverFewSockets(t *testing.T) {
	_, srv, addr := startServer(t)
	seedTable(t, addr, 20)

	pool := client.NewPool(addr, client.PoolConfig{Size: 2})
	defer pool.Close()

	const workers = 8
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := pool.With(func(h *client.PooledConn) error {
					id := int64(1 + (w*iters+i)%20)
					rows, err := h.Query("SELECT name FROM customers WHERE id = ?", types.NewInt(id))
					if err != nil {
						return err
					}
					defer rows.Close()
					if !rows.Next() {
						return fmt.Errorf("no row for id %d", id)
					}
					if got := rows.Row()[0].Str(); got != fmt.Sprintf("Customer %d", id) {
						return fmt.Errorf("id %d returned %q", id, got)
					}
					return rows.Err()
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := pool.Stats()
	if stats.Dials > 2 {
		t.Fatalf("pool of 2 dialed %d connections", stats.Dials)
	}
	if stats.Checkouts != workers*iters {
		t.Fatalf("Checkouts = %d, want %d", stats.Checkouts, workers*iters)
	}
	// Every checkout after the first two reused an idle connection, and every
	// prepare after each connection's first hit its statement cache.
	if stats.IdleReuses < workers*iters-2 {
		t.Fatalf("IdleReuses = %d, want >= %d", stats.IdleReuses, workers*iters-2)
	}
	if stats.StmtCacheHits < workers*iters-2 {
		t.Fatalf("StmtCacheHits = %d, want >= %d", stats.StmtCacheHits, workers*iters-2)
	}
	// The seeding connection plus at most two pooled ones.
	if ss := srv.Stats(); ss.ConnectionsAccepted > 3 {
		t.Fatalf("server accepted %d connections, want <= 3", ss.ConnectionsAccepted)
	}
}

// TestPoolHealthCheckDiscardsDeadConnections: an idle connection whose server
// vanished must fail the checkout ping and be discarded, not handed out.
func TestPoolHealthCheckDiscardsDeadConnections(t *testing.T) {
	_, srv, addr := startServer(t)
	pool := client.NewPool(addr, client.PoolConfig{Size: 2})
	defer pool.Close()

	h, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Conn().Ping(); err != nil {
		t.Fatal(err)
	}
	h.Release()

	srv.Close() // the idle connection's server side is now gone

	if _, err := pool.Get(); err == nil {
		t.Fatal("Get against a closed server must fail, not return a dead connection")
	}
	stats := pool.Stats()
	if stats.HealthCheckFailures != 1 {
		t.Fatalf("HealthCheckFailures = %d, want 1", stats.HealthCheckFailures)
	}
	if stats.Discards == 0 {
		t.Fatal("the dead connection was not discarded")
	}
}

// TestPoolRollsBackAbandonedTransaction: a worker that releases a connection
// with its transaction still open must not leak that transaction (or its
// locks) to the next worker.
func TestPoolRollsBackAbandonedTransaction(t *testing.T) {
	db, _, addr := startServer(t)
	seedTable(t, addr, 3)
	pool := client.NewPool(addr, client.PoolConfig{Size: 1})
	defer pool.Close()

	h, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Exec("UPDATE customers SET name = 'leaked' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	abortedBefore := db.Stats().Aborted
	h.Release() // forgot to commit or roll back

	if got := db.Stats().Aborted; got != abortedBefore+1 {
		t.Fatalf("aborted %d -> %d, want the abandoned transaction rolled back", abortedBefore, got)
	}
	h2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	res, err := h2.Exec("SELECT name FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Str(); got == "leaked" {
		t.Fatal("abandoned transaction's write survived the release")
	}
}

// TestPoolClosed: Get after Close fails fast — before any dial, so no server
// is needed.
func TestPoolClosed(t *testing.T) {
	pool := client.NewPool("127.0.0.1:1", client.PoolConfig{Size: 1})
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(); err != client.ErrPoolClosed {
		t.Fatalf("Get after Close = %v, want ErrPoolClosed", err)
	}
}

// TestDialAgainstPreV2Server: a server that answers the Hello with "unknown
// message type" (which is exactly what the PR 3 server did) must surface as a
// clear *HandshakeError, not a codec error or a confusing statement failure.
func TestDialAgainstPreV2Server(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		// Mimic the v1 server: read the frame, answer MsgErr "unknown
		// message type 0x0a" the way the old dispatch loop did.
		if _, _, err := wire.ReadFrame(nc); err != nil {
			return
		}
		var b wire.Buffer
		b.String("server: unknown message type 0x0a")
		wire.WriteFrame(nc, wire.MsgErr, b.B)
	}()

	_, err = client.Dial(ln.Addr().String())
	if err == nil {
		t.Fatal("dialing a pre-v2 server must fail")
	}
	he, ok := err.(*client.HandshakeError)
	if !ok {
		t.Fatalf("want *client.HandshakeError, got %T: %v", err, err)
	}
	if !strings.Contains(he.Error(), "does not speak protocol v"+wire.Current.String()) {
		t.Fatalf("handshake error %q does not explain the version gap", he.Error())
	}
}

// TestPooledConnUseAfterRelease: a handle kept past Release must never touch
// the connection again — it may already belong to another worker.
func TestPooledConnUseAfterRelease(t *testing.T) {
	_, _, addr := startServer(t)
	seedTable(t, addr, 1)
	pool := client.NewPool(addr, client.PoolConfig{Size: 1})
	defer pool.Close()

	h, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := h.Begin(); err == nil {
		t.Fatal("Begin on a released handle must fail")
	}
	if err := h.Commit(); err == nil {
		t.Fatal("Commit on a released handle must fail")
	}
	if err := h.Rollback(); err == nil {
		t.Fatal("Rollback on a released handle must fail")
	}
	if _, err := h.Prepare("SELECT id FROM customers"); err == nil {
		t.Fatal("Prepare on a released handle must fail")
	}
	if h.Conn() != nil {
		t.Fatal("Conn on a released handle must be nil")
	}
	// The connection itself is unharmed for the next worker.
	h2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if _, err := h2.Exec("SELECT id FROM customers"); err != nil {
		t.Fatal(err)
	}
}

// TestPooledConnStmtCacheBounded: cycling through distinct SQL text must not
// grow the statement cache without limit.
func TestPooledConnStmtCacheBounded(t *testing.T) {
	_, _, addr := startServer(t)
	seedTable(t, addr, 1)
	pool := client.NewPool(addr, client.PoolConfig{Size: 1})
	defer pool.Close()

	err := pool.With(func(h *client.PooledConn) error {
		for i := 0; i < 200; i++ {
			// 200 distinct statements, far past the 64-entry cache bound.
			if _, err := h.Exec(fmt.Sprintf("SELECT id FROM customers WHERE id = %d", i)); err != nil {
				return err
			}
		}
		// The connection still works and a repeated shape still caches.
		if _, err := h.Exec("SELECT id FROM customers WHERE id = 0"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolHealthCheckAfterSkipsPingForFreshConnections: with HealthCheckAfter
// set, a connection re-checked-out promptly after Release must not pay a ping
// round trip, while one idle past the window is probed again.
func TestPoolHealthCheckAfterSkipsPingForFreshConnections(t *testing.T) {
	_, srv, addr := startServer(t)
	pool := client.NewPool(addr, client.PoolConfig{Size: 1, HealthCheckAfter: 50 * time.Millisecond})
	defer pool.Close()

	h, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Conn().Ping(); err != nil {
		t.Fatal(err)
	}
	h.Release()

	before := srv.Stats().MessagesServed
	h, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if got := srv.Stats().MessagesServed - before; got != 0 {
		t.Fatalf("prompt re-checkout cost %d server messages, want 0 (no ping)", got)
	}

	time.Sleep(60 * time.Millisecond)
	before = srv.Stats().MessagesServed
	h, err = pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if got := srv.Stats().MessagesServed - before; got == 0 {
		t.Fatal("checkout after the idle window sent no ping")
	}
}
