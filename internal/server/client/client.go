// Package client is the Go client for the wowserver wire protocol. It
// mirrors the engine's prepared-statement API — Conn.Prepare, Stmt.Bind,
// Stmt.Query returning a streaming Rows cursor — so code written against a
// local engine.Session ports to a remote server by swapping the constructor.
//
//	conn, _ := client.Dial("127.0.0.1:4045")
//	defer conn.Close()
//	stmt, _ := conn.Prepare("SELECT name FROM customers WHERE id = ?")
//	rows, _ := stmt.Query(types.NewInt(7))
//	for rows.Next() { ... rows.Row() ... }
//	rows.Close()
//
// Dial negotiates the protocol version before returning: it sends a Hello
// frame and refuses to hand back a connection unless the server answered
// HelloOK with a compatible major. A mismatch surfaces as *wire.VersionError;
// a pre-v2 server (one that does not know the handshake at all) surfaces as
// *HandshakeError with a message naming the problem instead of a codec error.
//
// A Conn multiplexes nothing: like an engine.Session it must not be used
// from more than one goroutine at a time. Open one Conn per worker — or use
// Pool, which multiplexes N workers over K health-checked connections and
// reuses prepared statements per connection.
//
// Cursors pull rows in fetch batches; the batch size is the wire Fetch
// frame's max-rows and is settable per connection (Conn.SetFetchSize), per
// statement (Stmt.SetFetchSize) or per open cursor (Rows.SetFetchSize) —
// paging consumers like the forms window pager pin it to their page size so
// one page costs one round trip. The protocol itself is specified in
// docs/WIRE.md.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"

	"repro/internal/server/wire"
	"repro/internal/types"
)

// DefaultFetchSize is how many rows a cursor pulls per Fetch round trip.
const DefaultFetchSize = 256

// Error is a failure the server reported (as opposed to a transport error).
type Error struct {
	Msg string
}

func (e *Error) Error() string { return e.Msg }

// HandshakeError is a failed protocol negotiation that is not a clean
// version refusal: the server answered the Hello with something other than a
// HelloOK or a versioned error — most likely a pre-v2 wowserver that treats
// the Hello as an unknown message.
type HandshakeError struct {
	Addr   string
	Detail string
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("client: server at %s does not speak protocol v%s — %s (upgrade the server, or connect with a matching client)",
		e.Addr, wire.Current, e.Detail)
}

// Result is the materialised outcome of one remote statement, mirroring
// engine.Result: rows for EXPLAIN and drained SELECTs, an affected-row count
// for DML, a message for DDL and transaction control.
type Result struct {
	Columns      []string
	Rows         []types.Tuple
	RowsAffected int64
	Message      string
}

// Conn is one connection to a wowserver.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	// fetchSize is the Fetch batch size cursors on this connection use.
	fetchSize uint32
	closed    bool
	// broken marks a connection that hit a transport error (as opposed to a
	// server-reported statement error): its stream may be desynced, so the
	// pool must not hand it out again.
	broken bool
	// version is what the handshake negotiated; banner is the server's
	// self-identification from HelloOK; role says whether the server is a
	// primary or a read-only replica (v2.2 servers; RolePrimary otherwise).
	version wire.Version
	banner  string
	role    byte
	// lsn is the highest durable LSN the server has piggybacked on a
	// response (v2.2): the freshness signal fleet routing steers by.
	lsn uint64
	// pipelined counts Bind+Execute pairs that shared one round trip.
	pipelined uint64
	// ctx, when set, governs every round trip: cancellation (or deadline
	// expiry) mid-round-trip closes the socket to unblock the read, breaking
	// the connection by design. Nil means no cancellation.
	ctx context.Context
}

// DialOptions tunes Dial.
type DialOptions struct {
	// Version is the protocol version offered in the Hello frame. Zero means
	// wire.Current; setting it differently exists so tests and CI can prove
	// the server's rejection path.
	Version wire.Version
	// FetchSize is the per-Fetch row count cursors use (DefaultFetchSize
	// when zero).
	FetchSize int
}

// Dial connects to a server at the TCP address and negotiates the current
// protocol version.
func Dial(addr string) (*Conn, error) { return DialWith(addr, DialOptions{}) }

// DialWith connects with explicit options.
func DialWith(addr string, opts DialOptions) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		nc:        nc,
		r:         bufio.NewReader(nc),
		w:         bufio.NewWriter(nc),
		fetchSize: DefaultFetchSize,
	}
	if opts.FetchSize > 0 {
		c.fetchSize = uint32(opts.FetchSize)
	}
	offered := opts.Version
	if offered.IsZero() {
		offered = wire.Current
	}
	if err := c.handshake(addr, offered); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// handshake sends the Hello and decodes the server's verdict.
func (c *Conn) handshake(addr string, offered wire.Version) error {
	var b wire.Buffer
	wire.Hello{Magic: wire.HelloMagic, Version: offered}.Encode(&b)
	if err := wire.WriteFrame(c.w, wire.MsgHello, b.B); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	respType, resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return &HandshakeError{Addr: addr, Detail: fmt.Sprintf("connection dropped during handshake (%v)", err)}
	}
	cur := wire.NewCursor(resp)
	switch respType {
	case wire.MsgHelloOK:
		ok := wire.DecodeHelloOK(cur)
		if err := cur.Err(); err != nil {
			return err
		}
		c.version = ok.Version
		c.banner = ok.Banner
		c.role = ok.Role
		return nil
	case wire.MsgErr:
		msg := cur.String()
		if err := cur.Err(); err != nil {
			return err
		}
		if ve := wire.DecodeVersionTail(cur); ve != nil {
			// The server refused the offered version and said which it
			// speaks: surface the typed mismatch. (Client is filled from what
			// was actually offered — a pre-v2 server echoes a zero.)
			if ve.Client.IsZero() {
				ve.Client = offered
			}
			return ve
		}
		// A pre-v2 server answers the Hello with a plain "unknown message
		// type" error frame.
		if strings.Contains(msg, "unknown message type") {
			return &HandshakeError{Addr: addr, Detail: "it answered the version handshake with: " + msg}
		}
		return &Error{Msg: msg}
	default:
		return &HandshakeError{Addr: addr, Detail: fmt.Sprintf("it answered the version handshake with frame type 0x%02x", respType)}
	}
}

// SetContext sets the context subsequent round trips run under. Cancellation
// or deadline expiry mid-round-trip closes the socket — the only way to
// unblock a read the server may never answer — so a cancelled connection is
// broken by design: it reports the context's error and will be discarded by
// the pool, never reused with a desynced stream. A nil context (the default)
// means round trips block until the server answers or the transport fails.
//
// Like every other Conn method this is single-goroutine: set it between round
// trips, not concurrently with one.
func (c *Conn) SetContext(ctx context.Context) {
	if ctx == context.Background() {
		ctx = nil
	}
	c.ctx = ctx
}

// ProtocolVersion returns the version the handshake negotiated.
func (c *Conn) ProtocolVersion() wire.Version { return c.version }

// ServerBanner returns the server's self-identification from HelloOK.
func (c *Conn) ServerBanner() string { return c.banner }

// IsReplica reports whether the server identified itself as a read-only
// replica in the handshake (always false against pre-v2.2 servers).
func (c *Conn) IsReplica() bool { return c.role == wire.RoleReplica }

// LastLSN returns the highest durable LSN the server has reported on this
// connection's responses — 0 against pre-v2.2 servers. On a primary it is
// the WAL durable frontier; on a replica, the applied frontier. Comparing
// the two is how the fleet router bounds read staleness.
func (c *Conn) LastLSN() uint64 { return c.lsn }

// Pipelined returns how many Bind+Execute pairs this connection has merged
// into single round trips.
func (c *Conn) Pipelined() uint64 { return c.pipelined }

// noteLSNTail records the v2.2 durable-LSN tail, called with the cursor
// positioned after a response's last v2.1 field.
func (c *Conn) noteLSNTail(cur *wire.Cursor) {
	if c.version.Minor < 2 || cur == nil || cur.Err() != nil {
		return
	}
	if cur.Remaining() >= 8 {
		if lsn := cur.Uint64(); lsn > c.lsn {
			c.lsn = lsn
		}
	}
}

// Ping round-trips a liveness probe. Pool checkout uses it to validate idle
// connections before handing them out; against a v2.2 server it doubles as
// a freshness probe, refreshing LastLSN.
func (c *Conn) Ping() error {
	cur, err := c.expect(wire.MsgPing, nil, wire.MsgOK)
	if err != nil {
		return err
	}
	c.noteLSNTail(cur)
	return nil
}

// Healthy reports whether the connection is open and has not hit a transport
// error.
func (c *Conn) Healthy() bool { return !c.closed && !c.broken }

// SetFetchSize changes how many rows each Fetch round trip asks for.
func (c *Conn) SetFetchSize(n int) {
	if n > 0 {
		c.fetchSize = uint32(n)
	}
}

// Close closes the connection. The server rolls back any open transaction
// and releases every lock the connection held.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// roundTrip sends one message and reads the response, converting MsgErr
// frames into *Error values.
func (c *Conn) roundTrip(msgType byte, payload []byte) (byte, *wire.Cursor, error) {
	if c.closed {
		return 0, nil, fmt.Errorf("client: connection is closed")
	}
	if len(payload)+1 > wire.MaxFrame {
		// Too big to frame: refused before a byte hits the socket, so the
		// connection itself stays usable (split the batch and retry).
		return 0, nil, fmt.Errorf("client: message of %d bytes exceeds the %d-byte frame limit", len(payload)+1, wire.MaxFrame)
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return 0, nil, err
		}
		// Cancellation mid-round-trip closes the socket, which unblocks the
		// read below; the transport error is then re-typed as the context's.
		stop := context.AfterFunc(c.ctx, func() { c.nc.Close() })
		defer stop()
	}
	if err := wire.WriteFrame(c.w, msgType, payload); err != nil {
		c.broken = true
		return 0, nil, c.ctxError(err)
	}
	if err := c.w.Flush(); err != nil {
		c.broken = true
		return 0, nil, c.ctxError(err)
	}
	respType, resp, err := wire.ReadFrame(c.r)
	if err != nil {
		c.broken = true
		return 0, nil, c.ctxError(err)
	}
	cur := wire.NewCursor(resp)
	if respType == wire.MsgErr {
		return 0, nil, errFromCursor(cur)
	}
	return respType, cur, nil
}

// errFromCursor decodes a MsgErr payload into an *Error value.
func errFromCursor(cur *wire.Cursor) error {
	msg := cur.String()
	if err := cur.Err(); err != nil {
		return err
	}
	return &Error{Msg: msg}
}

// ctxError substitutes the context's error for a transport error the
// cancellation itself caused (closing the socket surfaces as "use of closed
// network connection" otherwise). The connection stays marked broken.
func (c *Conn) ctxError(err error) error {
	if c.ctx != nil {
		if cerr := c.ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}

// expect runs a round trip and checks the response type.
func (c *Conn) expect(msgType byte, payload []byte, want byte) (*wire.Cursor, error) {
	respType, cur, err := c.roundTrip(msgType, payload)
	if err != nil {
		return nil, err
	}
	if respType != want {
		return nil, fmt.Errorf("client: server answered 0x%02x, want 0x%02x", respType, want)
	}
	return cur, nil
}

// Prepare compiles a statement on the server and returns the remote handle.
// The server parses and plans it once (or not at all, when another session
// already prepared the same text into the shared plan cache).
func (c *Conn) Prepare(text string) (*Stmt, error) {
	var b wire.Buffer
	b.String(text)
	cur, err := c.expect(wire.MsgPrepare, b.B, wire.MsgStmt)
	if err != nil {
		return nil, err
	}
	st := &Stmt{conn: c}
	st.id = cur.Uint32()
	st.paramNames = cur.Strings()
	st.columns = cur.Strings()
	// v2.1 servers append whether Execute yields rows (SELECT or a RETURNING
	// write); older servers stop here and the flag stays false. v2.2 servers
	// append whether the statement is a pure SELECT — the pipelining gate.
	if cur.Remaining() > 0 {
		st.returnsRows = cur.Bool()
	}
	if cur.Remaining() > 0 {
		st.isQuery = cur.Bool()
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// Exec prepares, runs and closes a statement in one call — the convenience
// path for one-off statements (DDL, transaction control, ad-hoc DML).
func (c *Conn) Exec(text string, args ...types.Value) (*Result, error) {
	st, err := c.Prepare(text)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Exec(args...)
}

// Query prepares and runs a SELECT, returning a streaming cursor. Closing
// the cursor closes the underlying one-off statement too.
func (c *Conn) Query(text string, args ...types.Value) (*Rows, error) {
	st, err := c.Prepare(text)
	if err != nil {
		return nil, err
	}
	rows, err := st.Query(args...)
	if err != nil {
		st.Close()
		return nil, err
	}
	rows.ownStmt = st
	return rows, nil
}

// Begin opens an explicit transaction on the connection's server session.
func (c *Conn) Begin() error { return c.txnControl(wire.MsgBegin) }

// Commit commits the open transaction.
func (c *Conn) Commit() error { return c.txnControl(wire.MsgCommit) }

// Rollback rolls the open transaction back.
func (c *Conn) Rollback() error { return c.txnControl(wire.MsgRollback) }

func (c *Conn) txnControl(msgType byte) error {
	cur, err := c.expect(msgType, nil, wire.MsgResult)
	if err != nil {
		return err
	}
	_, err = readResult(cur)
	c.noteLSNTail(cur)
	return err
}

// readResult decodes a MsgResult payload.
func readResult(cur *wire.Cursor) (*Result, error) {
	res := &Result{}
	res.RowsAffected = int64(cur.Uint64())
	res.Message = cur.String()
	res.Columns = cur.Strings()
	n := cur.Uint32()
	for i := uint32(0); i < n; i++ {
		res.Rows = append(res.Rows, cur.Tuple())
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Stmt is a statement prepared on the server.
type Stmt struct {
	conn       *Conn
	id         uint32
	paramNames []string
	columns    []string
	// returnsRows records the server's v2.1 flag: Execute on this statement
	// yields rows (a SELECT, or DML with a RETURNING clause). isQuery is the
	// v2.2 flag marking a pure SELECT, the only statement kind Query may
	// pipeline Bind+Execute for (see pipeline.go).
	returnsRows bool
	isQuery     bool
	// named accumulates BindNamed values (by ordinal); namedSet marks which
	// ordinals were bound. The wire Bind is positional, so named values are
	// flushed as one positional Bind round trip before each Execute.
	named    []types.Value
	namedSet []bool
	// fetchSize overrides the connection's Fetch batch size for cursors
	// opened from this statement (0 = use the connection default).
	fetchSize uint32
	closed    bool
}

// SetFetchSize sets how many rows each Fetch round trip asks for on cursors
// opened from this statement, overriding the connection default. A paging
// caller (the TUI's window pager) sets it to its page size, so one visible
// page costs one round trip and the server streams no further. Zero or
// negative restores the connection default.
func (st *Stmt) SetFetchSize(n int) {
	if n > 0 {
		st.fetchSize = uint32(n)
	} else {
		st.fetchSize = 0
	}
}

// NumParams returns how many parameters the statement takes.
func (st *Stmt) NumParams() int { return len(st.paramNames) }

// ParamNames returns the parameter names by ordinal ("" for positional "?").
func (st *Stmt) ParamNames() []string {
	out := make([]string, len(st.paramNames))
	copy(out, st.paramNames)
	return out
}

// Columns returns the output column names (empty for statements that yield no
// rows).
func (st *Stmt) Columns() []string {
	out := make([]string, len(st.columns))
	copy(out, st.columns)
	return out
}

// ReturnsRows reports whether Execute on this statement yields rows — a
// SELECT, or DML with a RETURNING clause. Servers older than protocol v2.1
// never set it, so it may under-report against them.
func (st *Stmt) ReturnsRows() bool { return st.returnsRows }

// Bind sets every parameter positionally on the server-side statement. A
// positional Bind supersedes any values accumulated through BindNamed.
func (st *Stmt) Bind(args ...types.Value) error {
	if st.closed {
		return fmt.Errorf("client: statement is closed")
	}
	st.named, st.namedSet = nil, nil
	return st.bindWire(args)
}

func (st *Stmt) bindWire(args []types.Value) error {
	var b wire.Buffer
	b.Uint32(st.id)
	b.Tuple(types.Tuple(args))
	cur, err := st.conn.expect(wire.MsgBind, b.B, wire.MsgOK)
	if err != nil {
		return err
	}
	st.conn.noteLSNTail(cur)
	return nil
}

// BindNamed sets every occurrence of the named parameter ("@name" or "name"),
// mirroring the engine API. The wire protocol binds positionally, so named
// values accumulate client-side and flush as one positional Bind round trip
// when the statement executes; every named parameter must be bound by then.
func (st *Stmt) BindNamed(name string, v types.Value) error {
	if st.closed {
		return fmt.Errorf("client: statement is closed")
	}
	name = strings.ToLower(strings.TrimPrefix(name, "@"))
	if st.named == nil {
		st.named = make([]types.Value, len(st.paramNames))
		st.namedSet = make([]bool, len(st.paramNames))
	}
	found := false
	for i, n := range st.paramNames {
		if n == name {
			st.named[i], st.namedSet[i] = v, true
			found = true
		}
	}
	if !found {
		return fmt.Errorf("client: statement has no parameter named @%s", name)
	}
	return nil
}

// flushNamed ships accumulated BindNamed values as one positional Bind. A
// no-op when the statement binds positionally (or takes no parameters).
func (st *Stmt) flushNamed() error {
	if st.named == nil {
		return nil
	}
	for i, ok := range st.namedSet {
		if !ok {
			return fmt.Errorf("client: parameter @%s is not bound", st.paramNames[i])
		}
	}
	return st.bindWire(st.named)
}

// Exec runs the statement and materialises its outcome. Optional args are a
// shorthand for Bind. Running a SELECT through Exec drains its cursor.
func (st *Stmt) Exec(args ...types.Value) (*Result, error) {
	if len(args) > 0 {
		if err := st.Bind(args...); err != nil {
			return nil, err
		}
	}
	respType, cur, err := st.execute()
	if err != nil {
		return nil, err
	}
	if respType == wire.MsgResult {
		res, err := readResult(cur)
		st.conn.noteLSNTail(cur)
		return res, err
	}
	// A SELECT came back as a cursor: drain it.
	rows, err := st.rowsFromCursor(cur)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		res.Rows = append(res.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	if st.returnsRows {
		// A RETURNING write projects one row per affected row, so the drained
		// cursor is also the affected count.
		res.RowsAffected = int64(len(res.Rows))
	}
	return res, nil
}

// ExecBatch array-binds a prepared DML statement across every parameter row
// in one round trip: the server runs the whole batch through the engine's
// Stmt.ExecBatch — one cached plan, one compiled write operator and (outside
// an explicit transaction) one transaction. A bulk load therefore pays one
// network round trip and one commit per batch instead of one per row. The
// batch must fit one frame (wire.MaxFrame); split larger loads into chunks.
func (st *Stmt) ExecBatch(rows [][]types.Value) (*Result, error) {
	if st.closed {
		return nil, fmt.Errorf("client: statement is closed")
	}
	var b wire.Buffer
	b.Uint32(st.id)
	b.Uint32(uint32(len(rows)))
	for _, row := range rows {
		b.Tuple(types.Tuple(row))
	}
	cur, err := st.conn.expect(wire.MsgExecBatch, b.B, wire.MsgResult)
	if err != nil {
		return nil, err
	}
	res, rerr := readResult(cur)
	st.conn.noteLSNTail(cur)
	return res, rerr
}

// Query runs the statement and returns a streaming cursor over its result.
// Optional args are a shorthand for Bind. On a v2.2 connection a SELECT's
// Bind and Execute share one round trip (see pipeline.go).
func (st *Stmt) Query(args ...types.Value) (*Rows, error) {
	if len(args) > 0 {
		if st.isQuery && st.conn.version.Minor >= 2 {
			return st.queryPipelined(args)
		}
		if err := st.Bind(args...); err != nil {
			return nil, err
		}
	}
	respType, cur, err := st.execute()
	if err != nil {
		return nil, err
	}
	if respType != wire.MsgCursor {
		if st.returnsRows {
			// A pre-v2.1 negotiation answers a RETURNING write with the rows
			// materialised in the Result frame; serve them through the same
			// cursor interface from a local buffer.
			res, err := readResult(cur)
			if err != nil {
				return nil, err
			}
			return st.rowsFromResult(res), nil
		}
		return nil, fmt.Errorf("client: statement is not a query; use Exec")
	}
	return st.rowsFromCursor(cur)
}

func (st *Stmt) execute() (byte, *wire.Cursor, error) {
	if st.closed {
		return 0, nil, fmt.Errorf("client: statement is closed")
	}
	if err := st.flushNamed(); err != nil {
		return 0, nil, err
	}
	var b wire.Buffer
	b.Uint32(st.id)
	respType, cur, err := st.conn.roundTrip(wire.MsgExecute, b.B)
	if err != nil {
		return 0, nil, err
	}
	if respType != wire.MsgResult && respType != wire.MsgCursor {
		return 0, nil, fmt.Errorf("client: unexpected response 0x%02x to Execute", respType)
	}
	return respType, cur, nil
}

func (st *Stmt) rowsFromCursor(cur *wire.Cursor) (*Rows, error) {
	rows := &Rows{conn: st.conn, fetchSize: st.fetchSize}
	rows.id = cur.Uint32()
	rows.columns = cur.Strings()
	if err := cur.Err(); err != nil {
		return nil, err
	}
	st.conn.noteLSNTail(cur)
	return rows, nil
}

// rowsFromResult wraps an already-materialised result as a cursor: the server
// holds nothing, so exhaustion and Close skip the wire entirely.
func (st *Stmt) rowsFromResult(res *Result) *Rows {
	return &Rows{conn: st.conn, columns: res.Columns, buf: res.Rows, done: true, local: true}
}

// Close releases the server-side statement.
func (st *Stmt) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	var b wire.Buffer
	b.Uint32(st.id)
	_, err := st.conn.expect(wire.MsgCloseStmt, b.B, wire.MsgOK)
	return err
}

// Rows is a streaming cursor over a remote query's result. Rows arrive in
// fetch batches (Conn.SetFetchSize); Next serves from the batch and asks the
// server for the next one when it runs dry.
type Rows struct {
	conn    *Conn
	id      uint32
	columns []string
	// fetchSize overrides the connection's Fetch batch size for this cursor
	// (0 = use the connection default). Inherited from the statement's
	// SetFetchSize at open; adjustable mid-stream.
	fetchSize uint32
	buf       []types.Tuple
	pos       int
	done      bool
	// local marks a cursor served from an already-materialised result (a
	// RETURNING write answered with a Result frame): the server holds no
	// cursor, so Close never round-trips.
	local  bool
	closed bool
	err    error
	// ownStmt is the one-off statement Conn.Query created, closed with the
	// cursor.
	ownStmt *Stmt
}

// SetFetchSize changes how many rows this cursor's next Fetch round trips ask
// for. Zero or negative restores the connection default.
func (r *Rows) SetFetchSize(n int) {
	if n > 0 {
		r.fetchSize = uint32(n)
	} else {
		r.fetchSize = 0
	}
}

// Columns returns the result's column names.
func (r *Rows) Columns() []string {
	out := make([]string, len(r.columns))
	copy(out, r.columns)
	return out
}

// Next advances to the next row, fetching the next batch from the server
// when the buffered one is exhausted. It returns false at the end of the
// result or on error — check Err afterwards to tell the two apart.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.pos >= len(r.buf) {
		if r.done {
			r.finish()
			return false
		}
		if !r.fetch() {
			return false
		}
		if r.pos >= len(r.buf) {
			r.finish()
			return false
		}
	}
	r.pos++
	return true
}

// fetch pulls the next batch; it reports whether any progress can be made.
func (r *Rows) fetch() bool {
	size := r.fetchSize
	if size == 0 {
		size = r.conn.fetchSize
	}
	var b wire.Buffer
	b.Uint32(r.id)
	b.Uint32(size)
	cur, err := r.conn.expect(wire.MsgFetch, b.B, wire.MsgRows)
	if err != nil {
		r.err = err
		r.finish()
		return false
	}
	r.done = cur.Bool()
	n := cur.Uint32()
	r.buf = r.buf[:0]
	r.pos = 0
	for i := uint32(0); i < n; i++ {
		r.buf = append(r.buf, cur.Tuple())
	}
	if err := cur.Err(); err != nil {
		r.err = err
		r.finish()
		return false
	}
	r.conn.noteLSNTail(cur)
	return true
}

// Row returns the current row (valid until the next call to Next), or nil
// when Next has not yielded one — matching the engine cursor it mirrors.
func (r *Rows) Row() types.Tuple {
	if r.pos == 0 || r.pos > len(r.buf) {
		return nil
	}
	return r.buf[r.pos-1]
}

// Err returns the error that stopped iteration, if any.
func (r *Rows) Err() error { return r.err }

// finish marks the cursor consumed; the server already closed its side when
// it reported done (or an error), so no CloseCursor round trip is needed.
func (r *Rows) finish() {
	r.closed = true
	r.buf, r.pos = nil, 0 // Row() returns nil once iteration has ended
	if r.ownStmt != nil {
		_ = r.ownStmt.Close()
		r.ownStmt = nil
	}
}

// Close releases the cursor. Closing before exhaustion tells the server to
// drop its cursor (releasing the read locks it holds); closing after Next
// returned false is a no-op.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	wasDone := r.local || (r.done && r.pos >= len(r.buf))
	r.closed = true
	var err error
	if !wasDone {
		var b wire.Buffer
		b.Uint32(r.id)
		_, err = r.conn.expect(wire.MsgCloseCursor, b.B, wire.MsgOK)
	}
	if r.ownStmt != nil {
		closeErr := r.ownStmt.Close()
		if err == nil {
			err = closeErr
		}
		r.ownStmt = nil
	}
	return err
}
