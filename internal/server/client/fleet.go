// Fleet routing: one primary plus any number of read replicas behind a
// single checkout API. Writes and explicit transactions always pin to the
// primary. Reads round-robin across replicas whose applied LSN is within a
// configurable byte bound of the primary's durable frontier; a replica that
// lags past the bound is skipped, and when every replica does, reads fall
// back to the primary — correctness degrades to "slower", never to "stale
// beyond the bound".
//
// Freshness flows entirely through the v2.2 LSN piggyback: the primary
// stamps its durable frontier on every response, replicas stamp their
// applied frontier, and each Pool folds what its connections see into an
// LSN high-water mark. Because both numbers are byte offsets into the same
// log, primary minus replica is the lag in WAL bytes. A background prober
// pings every pool on a short interval so an idle replica's view cannot go
// stale enough to wedge routing (a freshly started fleet has seen no
// traffic at all — without the probe, every replica would look infinitely
// behind and reads would pin to the primary forever).
package client

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultMaxLagBytes is the staleness bound applied when FleetConfig leaves
// MaxLagBytes zero: a replica more than this many WAL bytes behind the
// primary's durable frontier is skipped for reads.
const DefaultMaxLagBytes = 1 << 20

// DefaultProbeInterval is the background freshness-probe cadence when
// FleetConfig leaves ProbeInterval zero.
const DefaultProbeInterval = 50 * time.Millisecond

// FleetConfig tunes a Fleet.
type FleetConfig struct {
	// Pool configures every member pool (primary and replicas alike).
	Pool PoolConfig
	// MaxLagBytes is the read-staleness bound in WAL bytes
	// (DefaultMaxLagBytes when zero).
	MaxLagBytes uint64
	// ProbeInterval is how often the background prober pings each member to
	// refresh its LSN view (DefaultProbeInterval when zero; negative
	// disables probing — tests drive freshness by hand).
	ProbeInterval time.Duration
}

// Fleet routes over one primary pool and zero or more replica pools.
// GetWrite and GetRead are safe for concurrent use.
type Fleet struct {
	primary  *Pool
	replicas []*Pool
	cfg      FleetConfig

	// rr distributes reads across eligible replicas round-robin.
	rr atomic.Uint64
	// primaryLSN is the highest durable frontier observed on the primary;
	// replica lag is measured against it.
	primaryLSN atomic.Uint64

	proberDone chan struct{}
	closed     atomic.Bool

	readCheckouts    atomic.Uint64
	replicaReads     atomic.Uint64
	primaryFallbacks atomic.Uint64
	staleSkips       atomic.Uint64
}

// FleetStats summarises routing behaviour.
type FleetStats struct {
	// PrimaryLSN is the highest durable frontier seen on the primary;
	// ReplicaLSNs holds each replica pool's applied high-water, in the
	// order the replicas were given to NewFleet.
	PrimaryLSN  uint64
	ReplicaLSNs []uint64
	// ReadCheckouts counts GetRead calls; ReplicaReads counts those served
	// by a replica; PrimaryFallbacks counts those that fell back to the
	// primary because no replica was within the staleness bound.
	ReadCheckouts    uint64
	ReplicaReads     uint64
	PrimaryFallbacks uint64
	// StaleSkips counts individual replica candidates passed over for
	// exceeding the bound (one GetRead can skip several).
	StaleSkips uint64
}

// NewFleet builds a fleet from the primary's address and the replicas'.
// With no replicas every read goes to the primary and the fleet degenerates
// to a plain pool with a routing API.
func NewFleet(primaryAddr string, replicaAddrs []string, cfg FleetConfig) *Fleet {
	if cfg.MaxLagBytes == 0 {
		cfg.MaxLagBytes = DefaultMaxLagBytes
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	f := &Fleet{
		primary:    NewPool(primaryAddr, cfg.Pool),
		cfg:        cfg,
		proberDone: make(chan struct{}),
	}
	for _, addr := range replicaAddrs {
		f.replicas = append(f.replicas, NewPool(addr, cfg.Pool))
	}
	if cfg.ProbeInterval > 0 {
		go f.probeLoop()
	} else {
		close(f.proberDone)
	}
	return f
}

// Primary exposes the primary pool for callers that need it directly.
func (f *Fleet) Primary() *Pool { return f.primary }

// Replicas exposes the replica pools in NewFleet order.
func (f *Fleet) Replicas() []*Pool { return f.replicas }

// GetWrite checks a primary connection out: the only place writes, DDL and
// explicit transactions may run.
func (f *Fleet) GetWrite() (*PooledConn, error) {
	h, err := f.primary.Get()
	if err != nil {
		return nil, err
	}
	f.notePrimary(h.Conn().LastLSN())
	return h, nil
}

// GetRead checks out a connection for a read-only statement, preferring the
// freshest-enough replica. The second result reports whether the connection
// is a replica's — a caller that decides to write anyway (it should not)
// would hit the replica's read-only refusal, not silent divergence.
func (f *Fleet) GetRead() (*PooledConn, bool, error) {
	f.readCheckouts.Add(1)
	if n := len(f.replicas); n > 0 {
		floor := f.lagFloor()
		start := f.rr.Add(1)
		for i := 0; i < n; i++ {
			p := f.replicas[(start+uint64(i))%uint64(n)]
			if p.LSNHighWater() < floor {
				f.staleSkips.Add(1)
				continue
			}
			h, err := p.Get()
			if err != nil {
				// A dead replica must not fail reads while the primary is up.
				f.staleSkips.Add(1)
				continue
			}
			f.replicaReads.Add(1)
			return h, true, nil
		}
		f.primaryFallbacks.Add(1)
	}
	h, err := f.primary.Get()
	if err != nil {
		return nil, false, err
	}
	f.notePrimary(h.Conn().LastLSN())
	return h, false, nil
}

// lagFloor computes the minimum applied LSN a replica must have reached to
// be eligible for reads right now.
func (f *Fleet) lagFloor() uint64 {
	lsn := f.PrimaryLSN()
	if lsn <= f.cfg.MaxLagBytes {
		return 0
	}
	return lsn - f.cfg.MaxLagBytes
}

// PrimaryLSN returns the highest durable frontier the fleet has observed on
// the primary: what the router itself noted at checkout, folded with what
// the primary pool's connections reported as they were released.
func (f *Fleet) PrimaryLSN() uint64 {
	lsn := f.primaryLSN.Load()
	if hw := f.primary.LSNHighWater(); hw > lsn {
		lsn = hw
	}
	return lsn
}

// notePrimary folds an observed primary frontier into the fleet's view.
func (f *Fleet) notePrimary(lsn uint64) {
	for {
		prev := f.primaryLSN.Load()
		if lsn <= prev || f.primaryLSN.CompareAndSwap(prev, lsn) {
			return
		}
	}
}

// Probe pings the primary and every replica once, refreshing each pool's
// LSN view. The background prober calls it on a timer; tests call it
// directly for deterministic freshness.
func (f *Fleet) Probe() {
	f.probePool(f.primary, true)
	for _, p := range f.replicas {
		f.probePool(p, false)
	}
}

func (f *Fleet) probePool(p *Pool, isPrimary bool) {
	h, err := p.Get()
	if err != nil {
		return
	}
	defer h.Release()
	if h.Conn().Ping() == nil && isPrimary {
		f.notePrimary(h.Conn().LastLSN())
	}
}

func (f *Fleet) probeLoop() {
	defer close(f.proberDone)
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for !f.closed.Load() {
		<-t.C
		f.Probe()
	}
}

// Stats returns a snapshot of the fleet's routing counters and LSN views.
func (f *Fleet) Stats() FleetStats {
	st := FleetStats{
		PrimaryLSN:       f.PrimaryLSN(),
		ReadCheckouts:    f.readCheckouts.Load(),
		ReplicaReads:     f.replicaReads.Load(),
		PrimaryFallbacks: f.primaryFallbacks.Load(),
		StaleSkips:       f.staleSkips.Load(),
	}
	for _, p := range f.replicas {
		st.ReplicaLSNs = append(st.ReplicaLSNs, p.LSNHighWater())
	}
	return st
}

// Close stops the prober and closes every member pool, returning the first
// error.
func (f *Fleet) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return fmt.Errorf("client: fleet is closed")
	}
	<-f.proberDone
	err := f.primary.Close()
	for _, p := range f.replicas {
		if cerr := p.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
