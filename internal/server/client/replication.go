// Client side of WAL streaming. Subscribe flips a connection out of
// request/response for good: the server pushes WALSegment frames from the
// requested LSN onward and the subscriber sends back ReplicaStatus acks on
// the same socket. The replica applier (internal/server/replica.go) is the
// real consumer; this file is just the wire choreography.
package client

import (
	"fmt"

	"repro/internal/server/wire"
)

// WALStream is a live replication feed over a dedicated connection. It is
// not safe for concurrent use except that Ack may be called from a
// different goroutine than Next (writes and reads use disjoint halves of
// the socket).
type WALStream struct {
	conn *Conn
}

// Subscribe asks the server to stream its WAL from startLSN (a byte offset
// into the log; 0 means the whole history). The connection belongs to the
// stream afterwards and cannot go back to queries — Close the stream when
// done. A refusal (LSN past the durable frontier, no file-backed WAL,
// subscribing to a replica) surfaces as an *Error from the first Next call.
func (c *Conn) Subscribe(startLSN uint64) (*WALStream, error) {
	if c.closed {
		return nil, fmt.Errorf("client: connection is closed")
	}
	if c.version.Minor < 2 {
		return nil, fmt.Errorf("client: replication requires protocol v2.2, server negotiated v%s", c.version)
	}
	var b wire.Buffer
	wire.Subscribe{StartLSN: startLSN}.Encode(&b)
	if err := wire.WriteFrame(c.w, wire.MsgSubscribe, b.B); err != nil {
		c.broken = true
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		c.broken = true
		return nil, err
	}
	// The connection is a one-way street now; keep the pool and ordinary
	// request helpers away from it.
	c.broken = true
	return &WALStream{conn: c}, nil
}

// Next blocks until the server pushes the next WAL segment. It returns the
// segment's start LSN and raw log bytes; segments are contiguous, so a gap
// between one segment's end and the next one's StartLSN means the stream is
// corrupt. Server refusals and protocol violations come back as errors.
func (ws *WALStream) Next() (wire.WALSegment, error) {
	c := ws.conn
	msgType, payload, err := wire.ReadFrame(c.r)
	if err != nil {
		return wire.WALSegment{}, err
	}
	cur := wire.NewCursor(payload)
	switch msgType {
	case wire.MsgWALSegment:
		seg := wire.DecodeWALSegment(cur)
		if err := cur.Err(); err != nil {
			return wire.WALSegment{}, err
		}
		return seg, nil
	case wire.MsgErr:
		return wire.WALSegment{}, errFromCursor(cur)
	default:
		return wire.WALSegment{}, fmt.Errorf("client: unexpected 0x%02x frame on a replication stream", msgType)
	}
}

// Ack reports the LSN the replica has durably applied through. The primary
// exposes it in its stats; it never blocks the stream, so acking is a
// courtesy with no flow-control teeth.
func (ws *WALStream) Ack(appliedLSN uint64) error {
	var b wire.Buffer
	wire.ReplicaStatus{AppliedLSN: appliedLSN}.Encode(&b)
	if err := wire.WriteFrame(ws.conn.w, wire.MsgReplicaStatus, b.B); err != nil {
		return err
	}
	return ws.conn.w.Flush()
}

// Close tears the stream down by closing the underlying connection.
func (ws *WALStream) Close() error {
	return ws.conn.Close()
}
