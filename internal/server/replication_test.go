package server_test

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

// startPrimary serves a file-backed database — the only kind that can stream
// its WAL — on a loopback port.
func startPrimary(t *testing.T) (*engine.Database, *server.Server, string) {
	t.Helper()
	wal := filepath.Join(t.TempDir(), "primary.wal")
	db, err := engine.Open(engine.Options{WALPath: wal, LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv, ln.Addr().String()
}

// startReplica wires the full replica stack: a fresh in-memory engine, the
// applier streaming from primaryAddr, and a read-only server over it.
func startReplica(t *testing.T, primaryAddr string) (*server.Replica, *server.Server, string) {
	t.Helper()
	db, err := engine.Open(engine.Options{LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep := server.NewReplica(db, primaryAddr)
	srv := server.New(db)
	srv.SetReadOnly(true)
	srv.SetLSNSource(rep.AppliedLSN)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	rep.Start()
	t.Cleanup(func() {
		rep.Stop()
		srv.Close()
		db.Close()
	})
	return rep, srv, ln.Addr().String()
}

// waitCaughtUp blocks until the replica's applied LSN reaches the primary's
// durable frontier as it stands now.
func waitCaughtUp(t *testing.T, primary *engine.Database, rep *server.Replica) {
	t.Helper()
	target := uint64(primary.Transactions().WAL().DurableLSN())
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedLSN() < target {
		if time.Now().After(deadline) {
			st := rep.Stats()
			t.Fatalf("replica stuck at LSN %d of %d (connects=%d streamErrors=%d lastErr=%q)",
				st.AppliedLSN, target, st.Connects, st.StreamErrors, st.LastError)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ledgerTotal reads the oracle invariant over one connection: row count and
// amount sum of the ledger table.
func ledgerTotal(c *client.Conn) (count, sum int64, err error) {
	rows, err := c.Query("SELECT amount FROM ledger")
	if err != nil {
		return 0, 0, err
	}
	defer rows.Close()
	for rows.Next() {
		count++
		sum += rows.Row()[0].Int()
	}
	return count, sum, rows.Err()
}

func TestReplicaStreamsAndServesReads(t *testing.T) {
	db, srv, primaryAddr := startPrimary(t)
	rep, _, replicaAddr := startReplica(t, primaryAddr)

	pc, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if pc.IsReplica() {
		t.Error("primary handshake claims replica role")
	}
	mustExec := func(sql string) {
		t.Helper()
		if _, err := pc.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE ledger (id INT PRIMARY KEY, owner TEXT, amount INT)")
	mustExec("INSERT INTO ledger (id, owner, amount) VALUES (1, 'alice', 700)")
	mustExec("INSERT INTO ledger (id, owner, amount) VALUES (2, 'bob', 300)")
	mustExec("UPDATE ledger SET amount = 650 WHERE id = 1")
	mustExec("INSERT INTO ledger (id, owner, amount) VALUES (3, 'gone', 50)")
	mustExec("DELETE FROM ledger WHERE id = 3")
	mustExec("UPDATE ledger SET amount = 350 WHERE id = 2")
	if pc.LastLSN() == 0 {
		t.Error("primary connection never reported a durable LSN on v2.2 responses")
	}

	waitCaughtUp(t, db, rep)

	rc, err := client.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if !rc.IsReplica() {
		t.Error("replica handshake did not claim replica role")
	}
	count, sum, err := ledgerTotal(rc)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 || sum != 1000 {
		t.Errorf("replica ledger: count=%d sum=%d, want 2 rows summing 1000", count, sum)
	}
	if got, want := rc.LastLSN(), rep.AppliedLSN(); got != want {
		t.Errorf("replica response LSN = %d, want applied %d", got, want)
	}

	// The replica acks its progress; the primary's stats should show it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ReplicaAckLSN == 0 {
		if time.Now().After(deadline) {
			t.Fatal("primary never saw a ReplicaStatus ack")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := srv.Stats(); st.WALSegmentsSent == 0 || st.WALBytesSent == 0 {
		t.Errorf("primary streaming counters empty: %+v", st)
	}
}

func TestReplicaRefusesWrites(t *testing.T) {
	db, _, primaryAddr := startPrimary(t)
	rep, rsrv, replicaAddr := startReplica(t, primaryAddr)

	pc, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Exec("INSERT INTO t (id, v) VALUES (1, 'x')"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, db, rep)

	rc, err := client.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	refused := []struct {
		name string
		run  func() error
	}{
		{"BEGIN", func() error { return rc.Begin() }},
		{"INSERT", func() error {
			_, err := rc.Exec("INSERT INTO t (id, v) VALUES (2, 'y')")
			return err
		}},
		{"UPDATE", func() error { _, err := rc.Exec("UPDATE t SET v = 'z' WHERE id = 1"); return err }},
		{"DDL", func() error { _, err := rc.Exec("CREATE TABLE nope (id INT PRIMARY KEY)"); return err }},
		{"EXPLAIN", func() error { _, err := rc.Exec("EXPLAIN SELECT id FROM t"); return err }},
		{"ExecBatch", func() error {
			st, err := rc.Prepare("INSERT INTO t (id, v) VALUES (?, ?)")
			if err != nil {
				return err
			}
			defer st.Close()
			_, err = st.ExecBatch([][]types.Value{{types.NewInt(9), types.NewString("b")}})
			return err
		}},
	}
	for _, tc := range refused {
		err := tc.run()
		if err == nil {
			t.Errorf("%s succeeded on a read-only replica", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "read-only replica") {
			t.Errorf("%s: error %q does not identify the read-only refusal", tc.name, err)
		}
	}
	// Each refusal is statement-level: the connection must still serve reads.
	rows, err := rc.Query("SELECT v FROM t WHERE id = ?", types.NewInt(1))
	if err != nil {
		t.Fatalf("SELECT after refusals: %v", err)
	}
	var got string
	for rows.Next() {
		got = rows.Row()[0].Str()
	}
	rows.Close()
	if got != "x" {
		t.Errorf("SELECT v = %q, want \"x\"", got)
	}
	if n := rsrv.Stats().ReadOnlyDenied; n < uint64(len(refused)) {
		t.Errorf("ReadOnlyDenied = %d, want >= %d", n, len(refused))
	}
	_ = rep
}

func TestSubscribeRefusals(t *testing.T) {
	// A server without a file-backed WAL has nothing to stream.
	_, _, memAddr := startServer(t)
	mc, err := client.Dial(memAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	ws, err := mc.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Next(); err == nil || !strings.Contains(err.Error(), "file-backed") {
		t.Errorf("subscribe to in-memory server: err = %v, want file-backed refusal", err)
	}

	// A start LSN past the durable frontier is a corrupt resume point.
	_, _, primaryAddr := startPrimary(t)
	pc, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	ws2, err := pc.Subscribe(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws2.Next(); err == nil || !strings.Contains(err.Error(), "durable frontier") {
		t.Errorf("subscribe past frontier: err = %v, want frontier refusal", err)
	}

	// Replicas do not fan out: subscribing to one is refused.
	db, _, pAddr := startPrimary(t)
	rep, _, replicaAddr := startReplica(t, pAddr)
	waitCaughtUp(t, db, rep)
	rc, err := client.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ws3, err := rc.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws3.Next(); err == nil || !strings.Contains(err.Error(), "primary") {
		t.Errorf("subscribe to replica: err = %v, want primary redirect", err)
	}
}

// severableProxy forwards TCP to a backend and can kill every active pipe on
// demand — the in-process stand-in for yanking a replica's network.
type severableProxy struct {
	ln      net.Listener
	backend string

	mu    sync.Mutex
	conns []net.Conn
}

func newSeverableProxy(t *testing.T, backend string) *severableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &severableProxy{ln: ln, backend: backend}
	go p.accept()
	t.Cleanup(func() {
		ln.Close()
		p.Sever()
	})
	return p
}

func (p *severableProxy) Addr() string { return p.ln.Addr().String() }

func (p *severableProxy) accept() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.backend)
		if err != nil {
			in.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, in, out)
		p.mu.Unlock()
		go func() { io.Copy(out, in); out.Close() }()
		go func() { io.Copy(in, out); in.Close() }()
	}
}

// Sever closes every active pipe; new connections still go through.
func (p *severableProxy) Sever() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func TestReplicaResubscribesAfterSeveredStream(t *testing.T) {
	db, _, primaryAddr := startPrimary(t)
	proxy := newSeverableProxy(t, primaryAddr)
	rep, _, replicaAddr := startReplica(t, proxy.Addr())

	pc, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Exec("CREATE TABLE ledger (id INT PRIMARY KEY, owner TEXT, amount INT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := pc.Prepare("INSERT INTO ledger (id, owner, amount) VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	insert := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if _, err := ins.Exec(types.NewInt(int64(i)), types.NewString("w"), types.NewInt(1)); err != nil {
				t.Fatal(err)
			}
		}
	}

	insert(0, 50)
	waitCaughtUp(t, db, rep)

	// Yank the stream repeatedly, with an explicit transaction spanning one
	// severance so the resume point has to rewind to its BEGIN.
	proxy.Sever()
	insert(50, 100)
	if err := pc.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Exec("INSERT INTO ledger (id, owner, amount) VALUES (1000, 'txn', 1)"); err != nil {
		t.Fatal(err)
	}
	proxy.Sever()
	if _, err := pc.Exec("INSERT INTO ledger (id, owner, amount) VALUES (1001, 'txn', 1)"); err != nil {
		t.Fatal(err)
	}
	if err := pc.Commit(); err != nil {
		t.Fatal(err)
	}
	insert(100, 120)
	waitCaughtUp(t, db, rep)

	rc, err := client.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	count, sum, err := ledgerTotal(rc)
	if err != nil {
		t.Fatal(err)
	}
	if count != 122 || sum != 122 {
		t.Errorf("after severed streams: count=%d sum=%d, want 122/122 (no loss, no double-apply)", count, sum)
	}
	if st := rep.Stats(); st.Connects < 2 {
		t.Errorf("replica reconnects = %d, want >= 2 after severances (stats %+v)", st.Connects, st)
	}
}

// TestReplicaRestartTwiceIdempotent replays the same log into fresh engines
// three times over — the replica-process-restart path is "re-stream
// everything from LSN 0", and it must land on the identical row set every
// time, including when the log carries checkpoint records to skip.
func TestReplicaRestartTwiceIdempotent(t *testing.T) {
	db, _, primaryAddr := startPrimary(t)

	pc, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Exec("CREATE TABLE ledger (id INT PRIMARY KEY, owner TEXT, amount INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := pc.Exec(fmt.Sprintf("INSERT INTO ledger (id, owner, amount) VALUES (%d, 'w', 1)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Exec("UPDATE ledger SET amount = 2 WHERE id = 0"); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		rep, _, replicaAddr := startReplica(t, primaryAddr)
		waitCaughtUp(t, db, rep)
		rc, err := client.Dial(replicaAddr)
		if err != nil {
			t.Fatal(err)
		}
		count, sum, err := ledgerTotal(rc)
		rc.Close()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if count != 40 || sum != 41 {
			t.Errorf("round %d: count=%d sum=%d, want 40/41", round, count, sum)
		}
		rep.Stop()
	}
}

// TestReplicationSnapshotAtomicity is the -race stress satellite: a primary
// taking concurrent transfer transactions, two replicas applying the stream,
// eight readers per replica watching the ledger oracle — two rows whose
// amounts always sum to 2000. A reader that ever sees a torn commit (three
// rows, a missing row, or a sum off by a transfer) fails the test.
func TestReplicationSnapshotAtomicity(t *testing.T) {
	db, _, primaryAddr := startPrimary(t)

	setup := db.Session()
	for _, sql := range []string{
		"CREATE TABLE ledger (id INT PRIMARY KEY, owner TEXT, amount INT)",
		"INSERT INTO ledger (id, owner, amount) VALUES (1, 'alice', 1000)",
		"INSERT INTO ledger (id, owner, amount) VALUES (2, 'bob', 1000)",
	} {
		if _, err := setup.Execute(sql); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	reps := make([]*server.Replica, 2)
	addrs := make([]string, 2)
	for i := range reps {
		reps[i], _, addrs[i] = startReplica(t, primaryAddr)
	}
	waitCaughtUp(t, db, reps[0])
	waitCaughtUp(t, db, reps[1])

	stop := make(chan struct{})
	var failures atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup

	// Movers: explicit transactions transferring between the two rows.
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			s := db.Session()
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := rng.Intn(20) + 1
				_, err := s.ExecuteScript(fmt.Sprintf(
					"BEGIN; UPDATE ledger SET amount = amount - %d WHERE id = 1; UPDATE ledger SET amount = amount + %d WHERE id = 2; COMMIT;", d, d))
				if err != nil {
					// Write conflicts under contention are expected; the
					// script path rolls back and we retry.
					continue
				}
			}
		}(int64(m))
	}

	// Readers: 8 per replica, over the wire, each checking the invariant.
	for _, addr := range addrs {
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				c, err := client.Dial(addr)
				if err != nil {
					failures.Add(1)
					t.Errorf("reader dial: %v", err)
					return
				}
				defer c.Close()
				for {
					select {
					case <-stop:
						return
					default:
					}
					count, sum, err := ledgerTotal(c)
					if err != nil {
						failures.Add(1)
						t.Errorf("reader query: %v", err)
						return
					}
					if count != 2 || sum != 2000 {
						failures.Add(1)
						t.Errorf("torn read on replica: count=%d sum=%d, want 2/2000", count, sum)
						return
					}
					reads.Add(1)
				}
			}(addr)
		}
	}

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d reader(s) saw a torn or failed read", failures.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("readers completed zero reads")
	}
	waitCaughtUp(t, db, reps[0])
	waitCaughtUp(t, db, reps[1])
	for i, addr := range addrs {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		count, sum, err := ledgerTotal(c)
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if count != 2 || sum != 2000 {
			t.Errorf("replica %d final state: count=%d sum=%d, want 2/2000", i, count, sum)
		}
	}
}
