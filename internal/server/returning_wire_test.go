// Wire-level tests for protocol v2.1: RETURNING writes streamed as cursors,
// the Stmt frame's returns-rows tail, the v2.0 interop fallback (rows
// materialised in the Result frame), and context cancellation on client round
// trips.
package server_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/types"
)

func TestReturningOverWireStreamsCursor(t *testing.T) {
	_, srv, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 5)

	st, err := c.Prepare("UPDATE customers SET credit = credit + 100 WHERE id <= ? RETURNING id, credit")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.ReturnsRows() {
		t.Fatal("v2.1 Prepare should flag a RETURNING write as returning rows")
	}

	before := srv.Stats().MessagesServed
	rows, err := st.Query(types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
		if rows.Row()[1].Float() <= 100 {
			t.Fatalf("returned credit %v does not reflect the update", rows.Row()[1])
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("streamed %d RETURNING rows, want 3", n)
	}
	// Bind + Execute + one Fetch: the write and its projected rows cost round
	// trips like a SELECT, not a write-then-read pair.
	if trips := srv.Stats().MessagesServed - before; trips > 3 {
		t.Fatalf("RETURNING write cost %d round trips, want <= 3", trips)
	}
}

// TestReturningMinor0GetsResultFrame pins the interop contract: a peer that
// negotiated minor 0 gets the RETURNING rows materialised inside the Result
// frame (a payload shape 2.0 already decodes) instead of a cursor.
func TestReturningMinor0GetsResultFrame(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.DialWith(addr, client.DialOptions{Version: wire.Version{Major: 2, Minor: 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ProtocolVersion(); got.Minor != 0 {
		t.Fatalf("negotiated %s, want minor 0", got)
	}
	seedCustomers(t, c, 2)

	res, err := c.Exec("DELETE FROM customers WHERE id = 1 RETURNING name")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 || len(res.Rows) != 1 {
		t.Fatalf("minor-0 RETURNING: affected=%d rows=%v", res.RowsAffected, res.Rows)
	}

	// Query on the same shape still works: the client serves the Result
	// frame's rows through a local buffer.
	st, err := c.Prepare("DELETE FROM customers WHERE id = 2 RETURNING name")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() || rows.Row()[0].IsNull() {
		t.Fatalf("minor-0 Query fallback yielded no row (err=%v)", rows.Err())
	}
	if rows.Next() {
		t.Fatal("expected exactly one row")
	}
}

func TestExecBatchReturningRejectedOverWire(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 1)

	st, err := c.Prepare("INSERT INTO customers (id, name) VALUES (?, ?) RETURNING id")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.ExecBatch([][]types.Value{{types.NewInt(10), types.NewString("x")}})
	var serverErr *client.Error
	if !errors.As(err, &serverErr) {
		t.Fatalf("ExecBatch+RETURNING: err = %v, want server-reported *client.Error", err)
	}
	if !strings.Contains(serverErr.Msg, "RETURNING") {
		t.Fatalf("error %q does not name RETURNING", serverErr.Msg)
	}
}

func TestClientNamedBind(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 3)

	st, err := c.Prepare("SELECT name FROM customers WHERE id = @id")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BindNamed("id", types.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("named bind yielded no row (err=%v)", rows.Err())
	}
	if err := st.BindNamed("nope", types.NewInt(1)); err == nil {
		t.Fatal("binding an unknown name should fail")
	}
}

func TestContextCancelUnblocksRoundTrip(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 1)

	// An already-expired deadline fails before any bytes move.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c.SetContext(ctx)
	if _, err := c.Exec("SELECT 1"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want DeadlineExceeded", err)
	}
	// The connection never sent the frame, so it is still healthy and usable
	// once the context clears.
	c.SetContext(context.Background())
	if !c.Healthy() {
		t.Fatal("pre-send cancellation must not break the connection")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after cleared context: %v", err)
	}
}

func TestPoolGetContextCancelled(t *testing.T) {
	_, _, addr := startServer(t)
	p := client.NewPool(addr, client.PoolConfig{Size: 1})
	defer p.Close()

	// Occupy the only slot, then a cancelled Get must not block.
	h, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p.GetContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked GetContext: err = %v, want DeadlineExceeded", err)
	}
	h.Release()

	// With the slot free again, WithContext runs the body under the context.
	err = p.WithContext(context.Background(), func(h *client.PooledConn) error {
		_, err := h.Exec("CREATE TABLE t (id INT PRIMARY KEY)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
