package server_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/types"
)

// startServer opens an in-memory database with a short lock timeout, serves
// it on a loopback port and returns the database, the server and the address
// to dial. Everything shuts down with the test.
func startServer(t *testing.T) (*engine.Database, *server.Server, string) {
	t.Helper()
	db, err := engine.Open(engine.Options{LockTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		db.Close()
	})
	return db, srv, ln.Addr().String()
}

const testSchema = "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, credit FLOAT, active BOOL, since DATE)"

func seedCustomers(t *testing.T, c *client.Conn, n int) {
	t.Helper()
	if _, err := c.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	insert, err := c.Prepare("INSERT INTO customers (id, name, credit, active, since) VALUES (?, ?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer insert.Close()
	for i := 1; i <= n; i++ {
		res, err := insert.Exec(
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer %d", i)),
			types.NewFloat(float64(100*i)),
			types.NewBool(i%2 == 0),
			types.NewDate(1983, 1, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("insert affected %d rows", res.RowsAffected)
		}
	}
}

func TestRoundTripAllValueKinds(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 5)

	// NULL through the wire too.
	if _, err := c.Exec("INSERT INTO customers (id, name) VALUES (6, 'No Credit')"); err != nil {
		t.Fatal(err)
	}

	stmt, err := c.Prepare("SELECT id, name, credit, active, since FROM customers WHERE id >= ? ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if got := stmt.NumParams(); got != 1 {
		t.Fatalf("NumParams = %d", got)
	}
	if cols := stmt.Columns(); len(cols) != 5 || cols[2] != "credit" {
		t.Fatalf("Columns = %v", cols)
	}

	rows, err := stmt.Query(types.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	var got []types.Tuple
	for rows.Next() {
		got = append(got, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d rows, want 3", len(got))
	}
	if got[0][0].Int() != 4 || got[0][1].Str() != "Customer 4" || got[0][2].Float() != 400 || !got[0][3].Bool() {
		t.Fatalf("row 0 = %v", got[0])
	}
	if got[0][4].Kind() != types.KindDate || got[0][4].String() != "1983-01-01" {
		t.Fatalf("date came back as %s %q", got[0][4].Kind(), got[0][4].String())
	}
	if !got[2][2].IsNull() {
		t.Fatalf("NULL credit came back as %v", got[2][2])
	}
}

func TestSmallFetchBatchesStreamWholeResult(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 23)
	c.SetFetchSize(4) // force several Fetch round trips
	rows, err := c.Query("SELECT id FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for rows.Next() {
		count++
		if got := rows.Row()[0].Int(); got != int64(count) {
			t.Fatalf("row %d has id %d", count, got)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 23 {
		t.Fatalf("streamed %d rows, want 23", count)
	}
}

func TestExplainAndTransactionsOverTheWire(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 3)

	res, err := c.Exec("EXPLAIN SELECT * FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN result = %+v", res)
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE customers SET credit = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("SELECT credit FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Float() != 100 {
		t.Fatalf("rollback did not undo the update: credit = %v", res.Rows[0][0])
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE customers SET credit = 7 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("SELECT credit FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Float() != 7 {
		t.Fatalf("commit lost the update: credit = %v", res.Rows[0][0])
	}
}

func TestStatementErrorKeepsConnectionUsable(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELEKT broken"); err == nil {
		t.Fatal("want a parse error")
	} else if _, ok := err.(*client.Error); !ok {
		t.Fatalf("want a server-reported *client.Error, got %T: %v", err, err)
	}
	seedCustomers(t, c, 1)
	if _, err := c.Exec("SELECT id FROM customers"); err != nil {
		t.Fatalf("connection unusable after statement error: %v", err)
	}
}

func TestGarbageFrameGetsErrorNotDisconnect(t *testing.T) {
	_, _, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// An unknown message type must come back as MsgErr on a live connection.
	if err := wire.WriteFrame(nc, 0x7f, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	msgType, _, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("response type = 0x%02x, want MsgErr", msgType)
	}
	// A truncated Bind payload likewise.
	if err := wire.WriteFrame(nc, wire.MsgBind, []byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	msgType, _, err = wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("truncated payload response = 0x%02x, want MsgErr", msgType)
	}
}

// TestFetchBatchesRespectByteBudget streams a result set whose total size is
// far beyond one frame's worth of rows: the server must split batches by
// bytes (not just by the client's row count) instead of overflowing the
// frame cap and dropping the connection.
func TestFetchBatchesRespectByteBudget(t *testing.T) {
	db, _, addr := startServer(t)
	s := db.Session()
	if _, err := s.Execute("CREATE TABLE blobs (id INT PRIMARY KEY, payload TEXT)"); err != nil {
		t.Fatal(err)
	}
	insert, err := s.Prepare("INSERT INTO blobs (id, payload) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer insert.Close()
	wide := strings.Repeat("x", 4096)
	const rows = 1500 // ~6 MiB total, beyond the 4 MiB batch budget
	batch := make([][]types.Value, rows)
	for i := range batch {
		batch[i] = []types.Value{types.NewInt(int64(i)), types.NewString(wide)}
	}
	if _, err := insert.ExecBatch(batch); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetFetchSize(1 << 20) // ask for everything at once; the budget must cap it
	got, err := c.Query("SELECT id, payload FROM blobs")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for got.Next() {
		if len(got.Row()[1].Str()) != len(wide) {
			t.Fatalf("row %d payload truncated to %d bytes", count, len(got.Row()[1].Str()))
		}
		count++
	}
	if err := got.Err(); err != nil {
		t.Fatal(err)
	}
	if count != rows {
		t.Fatalf("streamed %d rows, want %d", count, rows)
	}
}

// TestClientRowNilOutsideIteration: the remote cursor mirrors the engine's —
// Row outside a successful Next is nil, not a panic.
func TestClientRowNilOutsideIteration(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 1)
	rows, err := c.Query("SELECT id FROM customers WHERE id = 999")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Row(); got != nil {
		t.Fatalf("Row before Next = %v, want nil", got)
	}
	if rows.Next() {
		t.Fatal("unexpected row")
	}
	if got := rows.Row(); got != nil {
		t.Fatalf("Row after exhaustion = %v, want nil", got)
	}
}

// waitForWrite retries a write until the abandoned connection's locks are
// released (the server cleans up asynchronously after a disconnect).
func waitForWrite(t *testing.T, s *engine.Session, stmt string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := s.Execute(stmt)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("write still blocked after disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbruptDisconnectReleasesCursorLeases is the regression test for the
// disconnect cleanup path: a client that vanishes mid-stream must not keep
// holding its cursor's read lease, or every later writer would time out.
func TestAbruptDisconnectReleasesCursorLeases(t *testing.T) {
	db, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	seedCustomers(t, c, 50)

	c.SetFetchSize(2)
	rows, err := c.Query("SELECT id FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row")
	}

	// The open cursor holds a shared lock: a writer times out now.
	writer := db.Session()
	if _, err := writer.Execute("UPDATE customers SET credit = 0 WHERE id = 1"); err == nil {
		t.Fatal("update should block while the remote cursor is open")
	}

	// Kill the TCP connection without closing the cursor.
	c.Close()
	waitForWrite(t, writer, "UPDATE customers SET credit = 0 WHERE id = 1")
}

// TestAbruptDisconnectRollsBackTransaction: a connection that dies holding
// an exclusive lock inside BEGIN must roll back, and a second session must be
// able to write immediately after.
func TestAbruptDisconnectRollsBackTransaction(t *testing.T) {
	db, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	seedCustomers(t, c, 5)

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE customers SET credit = 12345 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	abortedBefore, _ := dbAborted(db)
	c.Close() // vanish with the transaction open and the exclusive lock held

	writer := db.Session()
	waitForWrite(t, writer, "UPDATE customers SET credit = 777 WHERE id = 2")
	res, err := writer.Query("SELECT credit FROM customers WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Float(); got != 777 {
		t.Fatalf("credit = %v; the dead connection's uncommitted 12345 should have rolled back before 777 was written", got)
	}
	if abortedAfter, _ := dbAborted(db); abortedAfter != abortedBefore+1 {
		t.Fatalf("aborted transactions %d -> %d, want one rollback from the disconnect", abortedBefore, abortedAfter)
	}
}

func dbAborted(db *engine.Database) (uint64, uint64) {
	stats := db.Stats()
	return stats.Aborted, stats.Committed
}

// TestSharedPlanCacheAcrossConnections: the second connection preparing the
// same text must hit the skeleton the first one compiled.
func TestSharedPlanCacheAcrossConnections(t *testing.T) {
	db, _, addr := startServer(t)
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	seedCustomers(t, c1, 3)

	const q = "SELECT name FROM customers WHERE id = ?"
	st1, err := c1.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	statsBetween := db.Stats()

	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	statsAfter := db.Stats()
	if statsAfter.PlanCacheHits != statsBetween.PlanCacheHits+1 {
		t.Fatalf("second connection's prepare: hits %d -> %d, want +1 (shared cache)",
			statsBetween.PlanCacheHits, statsAfter.PlanCacheHits)
	}
	if statsAfter.PlanCacheMisses != statsBetween.PlanCacheMisses {
		t.Fatalf("second connection's prepare recompiled the plan")
	}

	// Bind state stays private per connection: interleave the two.
	if err := st1.Bind(types.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Bind(types.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	r1, err := st1.Exec()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st2.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].Str() != "Customer 1" || r2.Rows[0][0].Str() != "Customer 2" {
		t.Fatalf("bind frames leaked across connections: %v / %v", r1.Rows[0][0], r2.Rows[0][0])
	}
}

// TestConcurrentConnectionsOverTheWire drives eight concurrent client
// connections through the full prepare/bind/execute/fetch cycle against the
// shared engine.
func TestConcurrentConnectionsOverTheWire(t *testing.T) {
	_, srv, addr := startServer(t)
	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	seedCustomers(t, setup, 20)
	setup.Close()

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			stmt, err := c.Prepare("SELECT name, credit FROM customers WHERE id = ?")
			if err != nil {
				errs <- err
				return
			}
			defer stmt.Close()
			for i := 0; i < iters; i++ {
				id := 1 + (w+i)%20
				rows, err := stmt.Query(types.NewInt(int64(id)))
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				n := 0
				for rows.Next() {
					if got := rows.Row()[0].Str(); got != fmt.Sprintf("Customer %d", id) {
						errs <- fmt.Errorf("worker %d: wrong row %q for id %d", w, got, id)
						return
					}
					n++
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
				if n != 1 {
					errs <- fmt.Errorf("worker %d: %d rows for id %d", w, n, id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if stats := srv.Stats(); stats.ConnectionsAccepted < workers {
		t.Fatalf("accepted %d connections, want >= %d", stats.ConnectionsAccepted, workers)
	}
}
