package server_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/types"
)

// startServer opens an in-memory database with a short lock timeout, serves
// it on a loopback port and returns the database, the server and the address
// to dial. Everything shuts down with the test.
func startServer(t *testing.T) (*engine.Database, *server.Server, string) {
	t.Helper()
	db, err := engine.Open(engine.Options{LockTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		db.Close()
	})
	return db, srv, ln.Addr().String()
}

const testSchema = "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, credit FLOAT, active BOOL, since DATE)"

func seedCustomers(t *testing.T, c *client.Conn, n int) {
	t.Helper()
	if _, err := c.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	insert, err := c.Prepare("INSERT INTO customers (id, name, credit, active, since) VALUES (?, ?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer insert.Close()
	for i := 1; i <= n; i++ {
		res, err := insert.Exec(
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer %d", i)),
			types.NewFloat(float64(100*i)),
			types.NewBool(i%2 == 0),
			types.NewDate(1983, 1, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("insert affected %d rows", res.RowsAffected)
		}
	}
}

func TestRoundTripAllValueKinds(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 5)

	// NULL through the wire too.
	if _, err := c.Exec("INSERT INTO customers (id, name) VALUES (6, 'No Credit')"); err != nil {
		t.Fatal(err)
	}

	stmt, err := c.Prepare("SELECT id, name, credit, active, since FROM customers WHERE id >= ? ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if got := stmt.NumParams(); got != 1 {
		t.Fatalf("NumParams = %d", got)
	}
	if cols := stmt.Columns(); len(cols) != 5 || cols[2] != "credit" {
		t.Fatalf("Columns = %v", cols)
	}

	rows, err := stmt.Query(types.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	var got []types.Tuple
	for rows.Next() {
		got = append(got, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d rows, want 3", len(got))
	}
	if got[0][0].Int() != 4 || got[0][1].Str() != "Customer 4" || got[0][2].Float() != 400 || !got[0][3].Bool() {
		t.Fatalf("row 0 = %v", got[0])
	}
	if got[0][4].Kind() != types.KindDate || got[0][4].String() != "1983-01-01" {
		t.Fatalf("date came back as %s %q", got[0][4].Kind(), got[0][4].String())
	}
	if !got[2][2].IsNull() {
		t.Fatalf("NULL credit came back as %v", got[2][2])
	}
}

func TestSmallFetchBatchesStreamWholeResult(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 23)
	c.SetFetchSize(4) // force several Fetch round trips
	rows, err := c.Query("SELECT id FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for rows.Next() {
		count++
		if got := rows.Row()[0].Int(); got != int64(count) {
			t.Fatalf("row %d has id %d", count, got)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 23 {
		t.Fatalf("streamed %d rows, want 23", count)
	}
}

func TestExplainAndTransactionsOverTheWire(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 3)

	res, err := c.Exec("EXPLAIN SELECT * FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN result = %+v", res)
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE customers SET credit = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("SELECT credit FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Float() != 100 {
		t.Fatalf("rollback did not undo the update: credit = %v", res.Rows[0][0])
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE customers SET credit = 7 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("SELECT credit FROM customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Float() != 7 {
		t.Fatalf("commit lost the update: credit = %v", res.Rows[0][0])
	}
}

func TestStatementErrorKeepsConnectionUsable(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELEKT broken"); err == nil {
		t.Fatal("want a parse error")
	} else if _, ok := err.(*client.Error); !ok {
		t.Fatalf("want a server-reported *client.Error, got %T: %v", err, err)
	}
	seedCustomers(t, c, 1)
	if _, err := c.Exec("SELECT id FROM customers"); err != nil {
		t.Fatalf("connection unusable after statement error: %v", err)
	}
}

// rawHandshake performs the client half of the v2 handshake over a bare TCP
// connection, for tests that craft frames by hand.
func rawHandshake(t *testing.T, nc net.Conn) {
	t.Helper()
	var b wire.Buffer
	wire.Hello{Magic: wire.HelloMagic, Version: wire.Current}.Encode(&b)
	if err := wire.WriteFrame(nc, wire.MsgHello, b.B); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgHelloOK {
		t.Fatalf("handshake answered 0x%02x, want HelloOK", msgType)
	}
	ok := wire.DecodeHelloOK(wire.NewCursor(payload))
	if !ok.Version.Compatible(wire.Current) {
		t.Fatalf("negotiated %s, want a v%d", ok.Version, wire.Current.Major)
	}
}

func TestGarbageFrameGetsErrorNotDisconnect(t *testing.T) {
	_, _, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rawHandshake(t, nc)
	// An unknown message type must come back as MsgErr on a live connection.
	if err := wire.WriteFrame(nc, 0x7f, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	msgType, _, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("response type = 0x%02x, want MsgErr", msgType)
	}
	// A truncated Bind payload likewise.
	if err := wire.WriteFrame(nc, wire.MsgBind, []byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	msgType, _, err = wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("truncated payload response = 0x%02x, want MsgErr", msgType)
	}
}

// TestFetchBatchesRespectByteBudget streams a result set whose total size is
// far beyond one frame's worth of rows: the server must split batches by
// bytes (not just by the client's row count) instead of overflowing the
// frame cap and dropping the connection.
func TestFetchBatchesRespectByteBudget(t *testing.T) {
	db, _, addr := startServer(t)
	s := db.Session()
	if _, err := s.Execute("CREATE TABLE blobs (id INT PRIMARY KEY, payload TEXT)"); err != nil {
		t.Fatal(err)
	}
	insert, err := s.Prepare("INSERT INTO blobs (id, payload) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer insert.Close()
	wide := strings.Repeat("x", 4096)
	const rows = 1500 // ~6 MiB total, beyond the 4 MiB batch budget
	batch := make([][]types.Value, rows)
	for i := range batch {
		batch[i] = []types.Value{types.NewInt(int64(i)), types.NewString(wide)}
	}
	if _, err := insert.ExecBatch(batch); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetFetchSize(1 << 20) // ask for everything at once; the budget must cap it
	got, err := c.Query("SELECT id, payload FROM blobs")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for got.Next() {
		if len(got.Row()[1].Str()) != len(wide) {
			t.Fatalf("row %d payload truncated to %d bytes", count, len(got.Row()[1].Str()))
		}
		count++
	}
	if err := got.Err(); err != nil {
		t.Fatal(err)
	}
	if count != rows {
		t.Fatalf("streamed %d rows, want %d", count, rows)
	}
}

// TestClientRowNilOutsideIteration: the remote cursor mirrors the engine's —
// Row outside a successful Next is nil, not a panic.
func TestClientRowNilOutsideIteration(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 1)
	rows, err := c.Query("SELECT id FROM customers WHERE id = 999")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Row(); got != nil {
		t.Fatalf("Row before Next = %v, want nil", got)
	}
	if rows.Next() {
		t.Fatal("unexpected row")
	}
	if got := rows.Row(); got != nil {
		t.Fatalf("Row after exhaustion = %v, want nil", got)
	}
}

// waitForWrite retries a write until the abandoned connection's locks are
// released (the server cleans up asynchronously after a disconnect).
func waitForWrite(t *testing.T, s *engine.Session, stmt string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := s.Execute(stmt)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("write still blocked after disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbruptDisconnectReleasesCursorSnapshot is the regression test for the
// disconnect cleanup path: a client that vanishes mid-stream must not keep
// its cursor's MVCC snapshot registered, or the version GC horizon would
// never advance past it. (Writers are never blocked either way — that is the
// point of snapshot reads.)
func TestAbruptDisconnectReleasesCursorSnapshot(t *testing.T) {
	db, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	seedCustomers(t, c, 50)

	c.SetFetchSize(2)
	rows, err := c.Query("SELECT id FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row")
	}

	// The open cursor never blocks a writer.
	writer := db.Session()
	if _, err := writer.Execute("UPDATE customers SET credit = 0 WHERE id = 1"); err != nil {
		t.Fatalf("writer must not block on a remote cursor: %v", err)
	}
	// But its snapshot pins the superseded version: nothing to reclaim yet.
	if n := db.Vacuum(); n != 0 {
		t.Fatalf("vacuum reclaimed %d versions under a live remote cursor, want 0", n)
	}

	// Kill the TCP connection without closing the cursor. The server-side
	// cleanup must release the cursor's snapshot so the GC horizon advances.
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := db.Vacuum(); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot still pinned after disconnect: vacuum reclaimed nothing")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbruptDisconnectRollsBackTransaction: a connection that dies holding
// an exclusive lock inside BEGIN must roll back, and a second session must be
// able to write immediately after.
func TestAbruptDisconnectRollsBackTransaction(t *testing.T) {
	db, _, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	seedCustomers(t, c, 5)

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE customers SET credit = 12345 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	abortedBefore, _ := dbAborted(db)
	c.Close() // vanish with the transaction open and the exclusive lock held

	writer := db.Session()
	waitForWrite(t, writer, "UPDATE customers SET credit = 777 WHERE id = 2")
	res, err := writer.Query("SELECT credit FROM customers WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Float(); got != 777 {
		t.Fatalf("credit = %v; the dead connection's uncommitted 12345 should have rolled back before 777 was written", got)
	}
	if abortedAfter, _ := dbAborted(db); abortedAfter != abortedBefore+1 {
		t.Fatalf("aborted transactions %d -> %d, want one rollback from the disconnect", abortedBefore, abortedAfter)
	}
}

func dbAborted(db *engine.Database) (uint64, uint64) {
	stats := db.Stats()
	return stats.Aborted, stats.Committed
}

// TestSharedPlanCacheAcrossConnections: the second connection preparing the
// same text must hit the skeleton the first one compiled.
func TestSharedPlanCacheAcrossConnections(t *testing.T) {
	db, _, addr := startServer(t)
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	seedCustomers(t, c1, 3)

	const q = "SELECT name FROM customers WHERE id = ?"
	st1, err := c1.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	statsBetween := db.Stats()

	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	statsAfter := db.Stats()
	if statsAfter.PlanCacheHits != statsBetween.PlanCacheHits+1 {
		t.Fatalf("second connection's prepare: hits %d -> %d, want +1 (shared cache)",
			statsBetween.PlanCacheHits, statsAfter.PlanCacheHits)
	}
	if statsAfter.PlanCacheMisses != statsBetween.PlanCacheMisses {
		t.Fatalf("second connection's prepare recompiled the plan")
	}

	// Bind state stays private per connection: interleave the two.
	if err := st1.Bind(types.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Bind(types.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	r1, err := st1.Exec()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st2.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].Str() != "Customer 1" || r2.Rows[0][0].Str() != "Customer 2" {
		t.Fatalf("bind frames leaked across connections: %v / %v", r1.Rows[0][0], r2.Rows[0][0])
	}
}

// TestConcurrentConnectionsOverTheWire drives eight concurrent client
// connections through the full prepare/bind/execute/fetch cycle against the
// shared engine.
func TestConcurrentConnectionsOverTheWire(t *testing.T) {
	_, srv, addr := startServer(t)
	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	seedCustomers(t, setup, 20)
	setup.Close()

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			stmt, err := c.Prepare("SELECT name, credit FROM customers WHERE id = ?")
			if err != nil {
				errs <- err
				return
			}
			defer stmt.Close()
			for i := 0; i < iters; i++ {
				id := 1 + (w+i)%20
				rows, err := stmt.Query(types.NewInt(int64(id)))
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				n := 0
				for rows.Next() {
					if got := rows.Row()[0].Str(); got != fmt.Sprintf("Customer %d", id) {
						errs <- fmt.Errorf("worker %d: wrong row %q for id %d", w, got, id)
						return
					}
					n++
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
				if n != 1 {
					errs <- fmt.Errorf("worker %d: %d rows for id %d", w, n, id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if stats := srv.Stats(); stats.ConnectionsAccepted < workers {
		t.Fatalf("accepted %d connections, want >= %d", stats.ConnectionsAccepted, workers)
	}
}

// TestHandshakeNegotiatesVersion: a current client gets HelloOK with the
// server's version and banner, and the counters record an accepted handshake.
func TestHandshakeNegotiatesVersion(t *testing.T) {
	_, srv, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v.Major != wire.Current.Major {
		t.Fatalf("negotiated v%s, want major %d", v, wire.Current.Major)
	}
	if c.ServerBanner() == "" {
		t.Fatal("HelloOK carried no server banner")
	}
	if stats := srv.Stats(); stats.HandshakesAccepted != 1 || stats.HandshakesRejected != 0 {
		t.Fatalf("handshake counters = %+v", stats)
	}
	// A higher client minor negotiates down to the server's minor.
	c2, err := client.DialWith(addr, client.DialOptions{Version: wire.Version{Major: wire.Current.Major, Minor: 99}})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v := c2.ProtocolVersion(); v != wire.Current {
		t.Fatalf("minor negotiation gave v%s, want v%s", v, wire.Current)
	}
}

// TestHandshakeRefusesUnknownMajor: the acceptance path for version skew — a
// client offering a major the server does not speak is refused with a typed
// *wire.VersionError naming both versions.
func TestHandshakeRefusesUnknownMajor(t *testing.T) {
	_, srv, addr := startServer(t)
	_, err := client.DialWith(addr, client.DialOptions{Version: wire.Version{Major: 9, Minor: 0}})
	if err == nil {
		t.Fatal("a v9 client must be refused")
	}
	ve, ok := err.(*wire.VersionError)
	if !ok {
		t.Fatalf("want *wire.VersionError, got %T: %v", err, err)
	}
	if ve.Client.Major != 9 || ve.Server.Major != wire.Current.Major {
		t.Fatalf("VersionError = %+v", ve)
	}
	if !strings.Contains(ve.Error(), "v9.0") || !strings.Contains(ve.Error(), "v"+wire.Current.String()) {
		t.Fatalf("refusal text %q does not name both versions", ve.Error())
	}
	if stats := srv.Stats(); stats.HandshakesRejected != 1 {
		t.Fatalf("HandshakesRejected = %d, want 1", stats.HandshakesRejected)
	}
}

// TestHandshakeRefusesV1Client: a pre-v2 client never sends a Hello — its
// first frame is already a Prepare. The server must answer with a versioned
// error (legible to the old client, which reads MsgErr as plain text) and
// close the connection.
func TestHandshakeRefusesV1Client(t *testing.T) {
	_, srv, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Exactly what the PR 3 client's Prepare sent: no Hello first.
	var b wire.Buffer
	b.String("SELECT 1 FROM t")
	if err := wire.WriteFrame(nc, wire.MsgPrepare, b.B); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("response type = 0x%02x, want MsgErr", msgType)
	}
	cur := wire.NewCursor(payload)
	msg := cur.String()
	if !strings.Contains(msg, "protocol version mismatch") || !strings.Contains(msg, "v"+wire.Current.String()) {
		t.Fatalf("refusal %q does not name the protocol version", msg)
	}
	// The structured tail types the error for v2-aware readers.
	ve := wire.DecodeVersionTail(cur)
	if ve == nil || ve.Server != wire.Current || !ve.Client.IsZero() {
		t.Fatalf("version tail = %+v", ve)
	}
	// The server hangs up after refusing: the next read is EOF.
	if _, _, err := wire.ReadFrame(nc); err == nil {
		t.Fatal("connection still open after a handshake refusal")
	}
	if stats := srv.Stats(); stats.HandshakesRejected != 1 || stats.HandshakesAccepted != 0 {
		t.Fatalf("handshake counters = %+v", stats)
	}
}

// TestExecBatchOverTheWire: one ExecBatch frame loads a whole batch through
// the engine's array-bind path — one round trip, one transaction.
func TestExecBatchOverTheWire(t *testing.T) {
	db, srv, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare("INSERT INTO customers (id, name, credit) VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 120
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("Batch %d", i+1)),
			types.NewFloat(float64(i)),
		}
	}
	committedBefore := db.Stats().Committed
	res, err := st.ExecBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != n {
		t.Fatalf("RowsAffected = %d, want %d", res.RowsAffected, n)
	}
	stats := db.Stats()
	if stats.BatchRowsExecuted < n {
		t.Fatalf("engine BatchRowsExecuted = %d, want >= %d", stats.BatchRowsExecuted, n)
	}
	if got := stats.Committed - committedBefore; got != 1 {
		t.Fatalf("batch committed %d transactions, want 1", got)
	}
	if ss := srv.Stats(); ss.BatchFrames != 1 || ss.BatchRowsReceived != n {
		t.Fatalf("server batch counters = %+v", ss)
	}
	check, err := c.Exec("SELECT id FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Rows) != n {
		t.Fatalf("table holds %d rows after batch, want %d", len(check.Rows), n)
	}
	// A failing row rolls the whole batch back: duplicate of id 1.
	if _, err := st.ExecBatch([][]types.Value{
		{types.NewInt(999), types.NewString("ok"), types.NewFloat(0)},
		{types.NewInt(1), types.NewString("dup"), types.NewFloat(0)},
	}); err == nil {
		t.Fatal("batch with a duplicate key must fail")
	}
	check, err = c.Exec("SELECT id FROM customers WHERE id = 999")
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Rows) != 0 {
		t.Fatal("failed batch left its earlier rows behind")
	}
}

// TestExecBatchTruncatedFrame: a batch frame whose payload lies about its row
// count must come back as MsgErr with the connection still usable.
func TestExecBatchTruncatedFrame(t *testing.T) {
	db, _, addr := startServer(t)
	s := db.Session()
	if _, err := s.Execute(testSchema); err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rawHandshake(t, nc)

	// A batch against a statement id that was never prepared fails on the
	// lookup, before any row decoding.
	var b wire.Buffer
	b.Uint32(42)
	b.Uint32(1000)
	if err := wire.WriteFrame(nc, wire.MsgExecBatch, b.B); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("unknown-statement batch answered 0x%02x, want MsgErr", msgType)
	}
	if msg := wire.NewCursor(payload).String(); !strings.Contains(msg, "no statement 42") {
		t.Fatalf("error %q, want the statement lookup failure", msg)
	}

	// Prepare a real statement over the raw connection to aim the bad
	// payloads at.
	b = wire.Buffer{}
	b.String("INSERT INTO customers (id, name) VALUES (?, ?)")
	if err := wire.WriteFrame(nc, wire.MsgPrepare, b.B); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err = wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgStmt {
		t.Fatalf("Prepare answered 0x%02x", msgType)
	}
	stmtID := wire.NewCursor(payload).Uint32()

	// Claims 1000 rows, carries none.
	b = wire.Buffer{}
	b.Uint32(stmtID)
	b.Uint32(1000) // row count
	if err := wire.WriteFrame(nc, wire.MsgExecBatch, b.B); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err = wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("truncated ExecBatch answered 0x%02x, want MsgErr", msgType)
	}
	if msg := wire.NewCursor(payload).String(); !strings.Contains(msg, "1000") {
		t.Fatalf("error %q does not name the bogus row count", msg)
	}

	// A row that is cut off mid-tuple sticks in the cursor decode.
	b = wire.Buffer{}
	b.Uint32(stmtID)
	b.Uint32(2)
	b.Tuple(types.Tuple{types.NewInt(7)})
	b.Uint32(3) // second row claims 3 values, then the payload ends
	if err := wire.WriteFrame(nc, wire.MsgExecBatch, b.B); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err = wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgErr {
		t.Fatalf("mid-tuple truncation answered 0x%02x, want MsgErr", msgType)
	}
	if msg := wire.NewCursor(payload).String(); !strings.Contains(msg, "row 1") {
		t.Fatalf("error %q does not locate the truncated row", msg)
	}

	// The connection survived both: a Ping still answers.
	if err := wire.WriteFrame(nc, wire.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	msgType, _, err = wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != wire.MsgOK {
		t.Fatalf("Ping after bad batches answered 0x%02x, want MsgOK", msgType)
	}
}

// TestMetricsSnapshot: the metrics document carries the server, engine and
// plan-cache counters the -metrics endpoint serves.
func TestMetricsSnapshot(t *testing.T) {
	_, srv, addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCustomers(t, c, 3)

	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics endpoint returned %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var m server.Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if m.Server.ConnectionsAccepted < 1 || m.Server.HandshakesAccepted < 1 {
		t.Fatalf("server counters missing from metrics: %+v", m.Server)
	}
	if m.Engine.StatementsPrepared == 0 {
		t.Fatalf("engine counters missing from metrics: %+v", m.Engine)
	}
	if m.Engine.SessionsOpened == 0 {
		t.Fatalf("session counters missing from metrics: %+v", m.Engine)
	}
	if m.Engine.SnapshotsTaken == 0 {
		t.Fatalf("MVCC counters missing from metrics: %+v", m.Engine)
	}
	if m.PlanCacheLen == 0 {
		t.Fatal("plan cache length missing from metrics")
	}
	if m.Protocol != "v"+wire.Current.String() {
		t.Fatalf("metrics protocol = %q", m.Protocol)
	}
}
