// WAL streaming: the server side of physical replication. A v2.2 client
// sends Subscribe with a start LSN and the connection stops being
// request/response: the server pushes WALSegment frames — raw bytes of its
// CRC-framed log, chunked without regard to record boundaries — as fast as
// the durable frontier advances, and reads ReplicaStatus acknowledgements
// off the same connection. Only durable bytes are ever streamed, so a
// replica can never apply state the primary could still lose to a crash.
package server

import (
	"fmt"

	"repro/internal/server/wire"
)

// walSegmentChunk bounds one pushed WALSegment's byte payload. It is far
// below wire.MaxFrame on purpose: segments need no relation to record
// frames (the subscriber reassembles the byte stream), so a log record
// bigger than the wire cap simply spans several segments.
const walSegmentChunk = 256 << 10

// handleSubscribe validates a Subscribe frame and, when acceptable, runs the
// push stream until the subscriber disconnects or the server closes. It
// reports whether the connection entered streaming mode; on refusal an Err
// frame has been written and the ordinary message loop continues.
func (c *conn) handleSubscribe(payload []byte) (streamed bool) {
	refuse := func(err error) bool {
		respType, resp := errFrame(err)
		if werr := wire.WriteFrame(c.w, respType, resp); werr == nil {
			c.w.Flush()
		}
		return false
	}
	cur := wire.NewCursor(payload)
	sub := wire.DecodeSubscribe(cur)
	if err := cur.Err(); err != nil {
		return refuse(err)
	}
	if c.version.Minor < 2 {
		return refuse(fmt.Errorf("server: Subscribe requires protocol v2.2, connection negotiated v%s", c.version))
	}
	if c.srv.readOnly.Load() {
		return refuse(fmt.Errorf("server: cannot subscribe to a replica; stream from the primary"))
	}
	wal := c.srv.db.Transactions().WAL()
	if !wal.FileBacked() {
		return refuse(fmt.Errorf("server: this server has no file-backed WAL to stream (start it with -wal)"))
	}
	if durable := wal.DurableLSN(); sub.StartLSN > uint64(durable) {
		return refuse(fmt.Errorf("server: subscribe LSN %d is past the durable frontier %d", sub.StartLSN, durable))
	}
	c.streamWAL(int64(sub.StartLSN))
	return true
}

// streamWAL pushes log bytes from pos onward until the connection dies. The
// subscriber's ReplicaStatus acks are drained by a side goroutine — the
// stream itself never blocks on them — and any other frame from the
// subscriber is a protocol error that ends the stream.
func (c *conn) streamWAL(pos int64) {
	s := c.srv
	wal := s.db.Transactions().WAL()
	tail, err := wal.OpenTail()
	if err != nil {
		respType, resp := errFrame(err)
		if werr := wire.WriteFrame(c.w, respType, resp); werr == nil {
			c.w.Flush()
		}
		return
	}
	defer tail.Close()
	s.subscribers.Add(1)
	defer s.subscribers.Add(-1)

	// The ack reader owns the connection's read half for the rest of its
	// life. It exits — and wakes the push loop through readerDone — when the
	// subscriber disconnects, which is also how Server.Close (closing the
	// net.Conn) tears a stream down.
	readerDone := make(chan error, 1)
	go func() {
		for {
			msgType, payload, err := wire.ReadFrame(c.r)
			if err != nil {
				readerDone <- err
				return
			}
			switch msgType {
			case wire.MsgReplicaStatus:
				st := wire.DecodeReplicaStatus(wire.NewCursor(payload))
				for {
					prev := s.replicaAckLSN.Load()
					if st.AppliedLSN <= prev || s.replicaAckLSN.CompareAndSwap(prev, st.AppliedLSN) {
						break
					}
				}
			default:
				readerDone <- fmt.Errorf("server: unexpected 0x%02x frame on a replication stream", msgType)
				return
			}
		}
	}()

	buf := make([]byte, walSegmentChunk)
	for {
		select {
		case <-readerDone:
			return
		default:
		}
		n, err := tail.ReadDurable(buf, pos)
		if err != nil {
			return
		}
		if n == 0 {
			// Caught up: sleep until the durable frontier moves. Re-check the
			// frontier after arming the notification — an advance between the
			// read and DurableNotify would otherwise be slept through.
			notify := wal.DurableNotify()
			if wal.DurableLSN() > pos {
				continue
			}
			select {
			case <-notify:
			case <-readerDone:
				return
			}
			continue
		}
		var b wire.Buffer
		b.Uint64(uint64(pos))
		b.Bytes(buf[:n])
		if err := wire.WriteFrame(c.w, wire.MsgWALSegment, b.B); err != nil {
			return
		}
		if err := c.w.Flush(); err != nil {
			return
		}
		pos += int64(n)
		s.walSegments.Add(1)
		s.walBytes.Add(uint64(n))
	}
}
