package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello")
	if err := WriteFrame(&buf, MsgPrepare, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgPrepare || string(got) != "hello" {
		t.Fatalf("got type 0x%02x payload %q", msgType, got)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	// A hostile length prefix must be rejected before any allocation.
	head := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(head)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want a frame-limit error", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := types.Tuple{
		types.Null(),
		types.NewInt(-42),
		types.NewFloat(3.25),
		types.NewString("naïve — ünïcode"),
		types.NewBool(true),
		types.NewDate(1983, 5, 21),
	}
	var b Buffer
	b.Tuple(vals)
	got := NewCursor(b.B).Tuple()
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if !vals[i].Equal(got[i]) && !(vals[i].IsNull() && got[i].IsNull()) {
			t.Fatalf("value %d: sent %v, got %v", i, vals[i], got[i])
		}
		if vals[i].Kind() != got[i].Kind() {
			t.Fatalf("value %d: kind %s became %s", i, vals[i].Kind(), got[i].Kind())
		}
	}
}

func TestCursorTruncationSticks(t *testing.T) {
	var b Buffer
	b.Uint32(9999) // claims a 9999-byte string that is not there
	c := NewCursor(b.B)
	if s := c.String(); s != "" {
		t.Fatalf("truncated string decoded as %q", s)
	}
	if c.Err() == nil {
		t.Fatal("want a truncation error")
	}
	// Every later read keeps reporting the first error.
	_ = c.Uint64()
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "truncated") {
		t.Fatalf("err = %v", c.Err())
	}
}
