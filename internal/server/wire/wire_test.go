package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello")
	if err := WriteFrame(&buf, MsgPrepare, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgPrepare || string(got) != "hello" {
		t.Fatalf("got type 0x%02x payload %q", msgType, got)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	// A hostile length prefix must be rejected before any allocation.
	head := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(head)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want a frame-limit error", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := types.Tuple{
		types.Null(),
		types.NewInt(-42),
		types.NewFloat(3.25),
		types.NewString("naïve — ünïcode"),
		types.NewBool(true),
		types.NewDate(1983, 5, 21),
	}
	var b Buffer
	b.Tuple(vals)
	got := NewCursor(b.B).Tuple()
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if !vals[i].Equal(got[i]) && !(vals[i].IsNull() && got[i].IsNull()) {
			t.Fatalf("value %d: sent %v, got %v", i, vals[i], got[i])
		}
		if vals[i].Kind() != got[i].Kind() {
			t.Fatalf("value %d: kind %s became %s", i, vals[i].Kind(), got[i].Kind())
		}
	}
}

func TestCursorTruncationSticks(t *testing.T) {
	var b Buffer
	b.Uint32(9999) // claims a 9999-byte string that is not there
	c := NewCursor(b.B)
	if s := c.String(); s != "" {
		t.Fatalf("truncated string decoded as %q", s)
	}
	if c.Err() == nil {
		t.Fatal("want a truncation error")
	}
	// Every later read keeps reporting the first error.
	_ = c.Uint64()
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "truncated") {
		t.Fatalf("err = %v", c.Err())
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var b Buffer
	Hello{Magic: HelloMagic, Version: Version{Major: 2, Minor: 1}}.Encode(&b)
	h := DecodeHello(NewCursor(b.B))
	if h.Magic != HelloMagic || h.Version.Major != 2 || h.Version.Minor != 1 {
		t.Fatalf("decoded %+v", h)
	}
	// Minor additions append fields; a decoder must tolerate a longer payload.
	b.Uint32(777)
	h = DecodeHello(NewCursor(b.B))
	if h.Version.Major != 2 {
		t.Fatalf("decoder choked on an appended field: %+v", h)
	}
}

func TestHelloOKRoundTrip(t *testing.T) {
	var b Buffer
	HelloOK{Version: Current, Banner: "wowserver/test"}.Encode(&b)
	ok := DecodeHelloOK(NewCursor(b.B))
	if ok.Version != Current || ok.Banner != "wowserver/test" {
		t.Fatalf("decoded %+v", ok)
	}
}

func TestVersionErrorTail(t *testing.T) {
	ve := &VersionError{Client: Version{Major: 9}, Server: Current}
	payload := EncodeVersionError(ve)
	c := NewCursor(payload)
	msg := c.String()
	if !strings.Contains(msg, "v9.0") || !strings.Contains(msg, "v"+Current.String()) {
		t.Fatalf("refusal text %q", msg)
	}
	got := DecodeVersionTail(c)
	if got == nil || got.Client.Major != 9 || got.Server != Current {
		t.Fatalf("tail decoded as %+v", got)
	}
	// An ordinary error frame has no tail.
	var plain Buffer
	plain.String("some error")
	c = NewCursor(plain.B)
	_ = c.String()
	if tail := DecodeVersionTail(c); tail != nil {
		t.Fatalf("plain error grew a version tail: %+v", tail)
	}
}

func TestVersionCompatibility(t *testing.T) {
	if !Current.Compatible(Version{Major: Current.Major, Minor: 99}) {
		t.Fatal("same major must be compatible regardless of minor")
	}
	if Current.Compatible(Version{Major: Current.Major + 1}) {
		t.Fatal("different major must be incompatible")
	}
	if ve := (&VersionError{Server: Current}); !strings.Contains(ve.Error(), "no Hello") {
		t.Fatalf("zero-client refusal text %q should name the missing handshake", ve.Error())
	}
}

// TestOversizedFrameRefusedBeforeWrite: WriteFrame must reject a payload over
// the frame cap without emitting a single byte, so the statement fails but
// the stream stays in sync. (This is the client-side guard for an ExecBatch
// that outgrew one frame.)
func TestOversizedFrameRefusedBeforeWrite(t *testing.T) {
	var buf bytes.Buffer
	huge := make([]byte, MaxFrame)
	if err := WriteFrame(&buf, MsgExecBatch, huge); err == nil {
		t.Fatal("oversized frame must be refused")
	}
	if buf.Len() != 0 {
		t.Fatalf("refused frame leaked %d bytes onto the stream", buf.Len())
	}
}

// TestExecBatchPayloadTruncation: a batch payload cut off mid-row decodes
// into a sticky cursor error, never a partial batch.
func TestExecBatchPayloadTruncation(t *testing.T) {
	var b Buffer
	b.Uint32(1) // stmt id
	b.Uint32(2) // two rows
	b.Tuple(types.Tuple{types.NewInt(1), types.NewString("whole row")})
	b.Tuple(types.Tuple{types.NewInt(2), types.NewString("cut off")})
	for cut := len(b.B) - 1; cut > 9; cut -= 7 {
		c := NewCursor(b.B[:cut])
		_ = c.Uint32() // stmt id
		n := c.Uint32()
		decoded := 0
		for i := uint32(0); i < n && c.Err() == nil; i++ {
			if c.Tuple(); c.Err() == nil {
				decoded++
			}
		}
		if c.Err() == nil && decoded == int(n) {
			t.Fatalf("truncation at %d of %d bytes decoded a complete batch", cut, len(b.B))
		}
	}
}
