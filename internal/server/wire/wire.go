// Package wire defines the length-prefixed binary protocol spoken between
// the wowserver session manager and its clients. Messages map 1:1 onto the
// engine's prepared-statement lifecycle:
//
//	Prepare     -> Session.Prepare        -> Stmt  (statement id, params, columns)
//	Bind        -> Stmt.Bind              -> OK
//	Execute     -> Stmt.Query / Stmt.Exec -> Cursor (SELECT) or Result
//	Fetch       -> Rows.Next x maxRows    -> Rows (a batch; done closes the cursor)
//	CloseStmt   -> Stmt.Close             -> OK
//	CloseCursor -> Rows.Close             -> OK
//	Begin / Commit / Rollback             -> Result
//
// Since protocol v2 a connection starts with a version handshake before any
// of the statement messages:
//
//	Hello       -> version check          -> HelloOK (negotiated version, banner)
//	ExecBatch   -> Stmt.ExecBatch         -> Result  (array-bind in one round trip)
//	Ping        -> liveness check         -> OK      (pool health checks)
//
// Since v2.2 a connection can instead become a replication stream: Subscribe
// carries a start LSN, the server pushes WALSegment frames (raw bytes of the
// primary's CRC-framed log) from there on, and the replica acknowledges
// progress with ReplicaStatus frames. v2.2 also appends the server's durable
// LSN to Result, Cursor, Rows and OK frames — the lag signal fleet routing
// steers by — and a role byte to HelloOK.
//
// Framing: every message is one frame — a 4-byte big-endian payload length,
// then the payload, whose first byte is the message type. Integers are
// big-endian and fixed width; strings are a uint32 length followed by UTF-8
// bytes; values are a kind byte followed by the kind's fixed encoding.
//
// Versioning: the Hello frame carries a magic word and the client's version;
// the server refuses a major it does not speak (with a *VersionError whose
// versions ride in a structured tail on the error frame) and answers HelloOK
// with the negotiated version otherwise. The major number gates wire
// compatibility; minors may only append fields to existing payloads, which
// decoders tolerate (a Cursor never requires full consumption), so a v2.1
// peer interoperates with v2.0 and a v3 codec can evolve behind the same
// handshake. The normative protocol specification — frame layout, every
// message payload, error-tail encoding, version rules — is docs/WIRE.md in
// the repository root; this package is its reference implementation.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/types"
)

// Message types, client to server.
const (
	MsgPrepare     byte = 0x01 // sql string
	MsgBind        byte = 0x02 // stmt id, values
	MsgExecute     byte = 0x03 // stmt id
	MsgFetch       byte = 0x04 // cursor id, max rows
	MsgCloseStmt   byte = 0x05 // stmt id
	MsgCloseCursor byte = 0x06 // cursor id
	MsgBegin       byte = 0x07
	MsgCommit      byte = 0x08
	MsgRollback    byte = 0x09
	MsgHello       byte = 0x0a // magic, client version — must be the first frame (v2)
	MsgExecBatch   byte = 0x0b // stmt id, row count, parameter rows (v2)
	MsgPing        byte = 0x0c // liveness probe, answered with OK (v2)

	// Replication family (v2.2). Subscribe turns the connection into a WAL
	// stream: the server pushes WALSegment frames and the request/response
	// discipline ends; the only frame the subscriber may send from then on is
	// ReplicaStatus.
	MsgSubscribe     byte = 0x0d // start LSN (v2.2)
	MsgReplicaStatus byte = 0x0e // applied LSN, acknowledging stream progress (v2.2)
)

// Message types, server to client.
const (
	MsgErr        byte = 0x20 // error text (+ server version tail on handshake refusal)
	MsgStmt       byte = 0x21 // stmt id, param names, columns
	MsgResult     byte = 0x22 // rows affected, message, columns, rows
	MsgCursor     byte = 0x23 // cursor id, columns
	MsgRows       byte = 0x24 // done flag, row batch
	MsgOK         byte = 0x25
	MsgHelloOK    byte = 0x26 // negotiated version, server banner (v2)
	MsgWALSegment byte = 0x27 // start LSN, raw log bytes — pushed after Subscribe (v2.2)
)

// --- protocol version ---------------------------------------------------------

// HelloMagic is the first word of a Hello payload: it distinguishes a wow
// client's handshake from an arbitrary program that happened to connect.
const HelloMagic uint32 = 0x574f5721 // "WOW!"

// Version is a protocol version. The major number gates compatibility: both
// ends must speak the same major. Minors are informational — a higher minor
// may only append fields to existing payloads, which older decoders ignore.
type Version struct {
	Major uint32
	Minor uint32
}

// Current is the protocol version this tree speaks.
//
// v2.1 appends two things to v2.0 payloads, both behind the append-only minor
// rule so 2.0 peers interoperate untouched:
//   - Stmt frames carry a trailing returns-rows flag, telling the client up
//     front that a DML statement has a RETURNING clause (2.0 decoders never
//     read the tail).
//   - Execute on a RETURNING statement answers with a Cursor frame so the
//     projected rows stream in fetch batches, exactly like a SELECT. To a 2.0
//     peer the server answers with a Result frame instead, the rows
//     materialised inline (the Result payload has carried columns + rows
//     since 2.0).
//
// v2.2 adds the replication family and the lag signal, again append-only:
//   - Subscribe / WALSegment / ReplicaStatus stream the primary's log to
//     replicas (a subscribed connection leaves request/response entirely).
//   - Result, Cursor, Rows and OK frames carry a trailing uint64: the
//     server's durable LSN, which fleet routing compares across nodes to
//     bound staleness. HelloOK carries a trailing role byte (0 = primary,
//     1 = read-only replica), and Stmt a trailing is-query flag that tells
//     the client which statements are safe to pipeline.
var Current = Version{Major: 2, Minor: 2}

// String renders the version as "2.0".
func (v Version) String() string { return fmt.Sprintf("%d.%d", v.Major, v.Minor) }

// IsZero reports whether the version is unset.
func (v Version) IsZero() bool { return v.Major == 0 && v.Minor == 0 }

// Compatible reports whether a peer speaking the other version can be served:
// majors must match exactly.
func (v Version) Compatible(other Version) bool { return v.Major == other.Major }

// VersionError is a handshake refusal: the two ends speak incompatible
// protocol majors (or the client never sent a Hello at all, in which case its
// version is zero — a pre-v2 client). The server encodes both versions into
// the refusal frame, so the client re-types the error instead of pattern
// matching on text.
type VersionError struct {
	Client Version // what the client offered (zero when no Hello was sent)
	Server Version // what the server speaks
}

func (e *VersionError) Error() string {
	if e.Client.IsZero() {
		return fmt.Sprintf("wire: protocol version mismatch: client sent no Hello handshake (pre-v2 protocol or not a wow client); server speaks v%s", e.Server)
	}
	return fmt.Sprintf("wire: protocol version mismatch: client speaks v%s, server speaks v%s (majors must match)", e.Client, e.Server)
}

// Hello is the client's opening frame.
type Hello struct {
	Magic   uint32
	Version Version
}

// Encode appends the Hello payload.
func (h Hello) Encode(b *Buffer) {
	b.Uint32(h.Magic)
	b.Uint32(h.Version.Major)
	b.Uint32(h.Version.Minor)
}

// DecodeHello reads a Hello payload.
func DecodeHello(c *Cursor) Hello {
	return Hello{
		Magic:   c.Uint32(),
		Version: Version{Major: c.Uint32(), Minor: c.Uint32()},
	}
}

// Server roles carried in the HelloOK role byte (v2.2).
const (
	RolePrimary byte = 0 // accepts writes and replication subscribers
	RoleReplica byte = 1 // read-only: refuses writes and explicit transactions
)

// HelloOK is the server's handshake acceptance.
type HelloOK struct {
	Version Version // the negotiated version the connection will speak
	Banner  string  // a human-readable server identification
	Role    byte    // RolePrimary or RoleReplica, appended at minor 2
}

// Encode appends the HelloOK payload.
func (h HelloOK) Encode(b *Buffer) {
	b.Uint32(h.Version.Major)
	b.Uint32(h.Version.Minor)
	b.String(h.Banner)
	b.Byte(h.Role)
}

// DecodeHelloOK reads a HelloOK payload.
func DecodeHelloOK(c *Cursor) HelloOK {
	h := HelloOK{
		Version: Version{Major: c.Uint32(), Minor: c.Uint32()},
		Banner:  c.String(),
	}
	if c.Err() == nil && c.Remaining() > 0 {
		h.Role = c.Byte()
	}
	return h
}

// Subscribe asks the server to stream its WAL from StartLSN (a byte offset
// into the log; 0 streams the full history). The server refuses an LSN past
// its durable frontier, a log it cannot re-read, or a subscriber on a
// connection that negotiated a minor below 2.
type Subscribe struct {
	StartLSN uint64
}

// Encode appends the Subscribe payload.
func (s Subscribe) Encode(b *Buffer) { b.Uint64(s.StartLSN) }

// DecodeSubscribe reads a Subscribe payload.
func DecodeSubscribe(c *Cursor) Subscribe {
	return Subscribe{StartLSN: c.Uint64()}
}

// WALSegment is one pushed chunk of the primary's log: the raw CRC-framed
// bytes beginning at StartLSN. Segments are contiguous but need not align
// with record frames — the subscriber reassembles the byte stream and
// decodes records out of it, so a log record larger than the wire frame cap
// simply spans segments.
type WALSegment struct {
	StartLSN uint64
	Data     []byte
}

// Encode appends the WALSegment payload.
func (s WALSegment) Encode(b *Buffer) {
	b.Uint64(s.StartLSN)
	b.Bytes(s.Data)
}

// DecodeWALSegment reads a WALSegment payload.
func DecodeWALSegment(c *Cursor) WALSegment {
	return WALSegment{StartLSN: c.Uint64(), Data: c.Bytes()}
}

// ReplicaStatus is the subscriber's progress acknowledgement: every commit
// whose record ends at or below AppliedLSN is applied and visible to the
// replica's readers.
type ReplicaStatus struct {
	AppliedLSN uint64
}

// Encode appends the ReplicaStatus payload.
func (s ReplicaStatus) Encode(b *Buffer) { b.Uint64(s.AppliedLSN) }

// DecodeReplicaStatus reads a ReplicaStatus payload.
func DecodeReplicaStatus(c *Cursor) ReplicaStatus {
	return ReplicaStatus{AppliedLSN: c.Uint64()}
}

// EncodeVersionError renders a handshake refusal as a MsgErr payload: the
// error text (so a pre-v2 reader still gets a legible message) followed by a
// structured tail — client major/minor, server major/minor — that v2-aware
// clients decode back into a typed *VersionError.
func EncodeVersionError(e *VersionError) []byte {
	var b Buffer
	b.String(e.Error())
	b.Uint32(e.Client.Major)
	b.Uint32(e.Client.Minor)
	b.Uint32(e.Server.Major)
	b.Uint32(e.Server.Minor)
	return b.B
}

// DecodeVersionTail tries to read the structured version tail from an error
// payload cursor (positioned after the error text). It returns nil when the
// tail is absent — an ordinary error frame.
func DecodeVersionTail(c *Cursor) *VersionError {
	if c.Err() != nil || c.Remaining() < 16 {
		return nil
	}
	return &VersionError{
		Client: Version{Major: c.Uint32(), Minor: c.Uint32()},
		Server: Version{Major: c.Uint32(), Minor: c.Uint32()},
	}
}

// MaxFrame bounds one frame's payload so a corrupt or hostile length prefix
// cannot make either end allocate unbounded memory.
const MaxFrame = 16 << 20

// WriteFrame writes one frame: length prefix, type byte, payload.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", len(payload)+1, MaxFrame)
	}
	var head [5]byte
	binary.BigEndian.PutUint32(head[:4], uint32(len(payload)+1))
	head[4] = msgType
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame and returns its type and payload.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// --- payload building --------------------------------------------------------

// Buffer accumulates a message payload.
type Buffer struct {
	B []byte
}

// Uint32 appends a fixed-width 32-bit integer.
func (b *Buffer) Uint32(v uint32) { b.B = binary.BigEndian.AppendUint32(b.B, v) }

// Uint64 appends a fixed-width 64-bit integer.
func (b *Buffer) Uint64(v uint64) { b.B = binary.BigEndian.AppendUint64(b.B, v) }

// Byte appends one byte.
func (b *Buffer) Byte(v byte) { b.B = append(b.B, v) }

// Bool appends a boolean as one byte.
func (b *Buffer) Bool(v bool) {
	if v {
		b.B = append(b.B, 1)
	} else {
		b.B = append(b.B, 0)
	}
}

// String appends a length-prefixed string.
func (b *Buffer) String(s string) {
	b.Uint32(uint32(len(s)))
	b.B = append(b.B, s...)
}

// Bytes appends a length-prefixed byte blob.
func (b *Buffer) Bytes(p []byte) {
	b.Uint32(uint32(len(p)))
	b.B = append(b.B, p...)
}

// Strings appends a counted list of strings.
func (b *Buffer) Strings(ss []string) {
	b.Uint32(uint32(len(ss)))
	for _, s := range ss {
		b.String(s)
	}
}

// Value appends one SQL value: a kind byte, then the kind's encoding.
func (b *Buffer) Value(v types.Value) {
	b.Byte(byte(v.Kind()))
	switch v.Kind() {
	case types.KindNull:
	case types.KindInt:
		b.Uint64(uint64(v.Int()))
	case types.KindFloat:
		b.Uint64(math.Float64bits(v.Float()))
	case types.KindString:
		b.String(v.Str())
	case types.KindBool:
		b.Bool(v.Bool())
	case types.KindDate:
		b.Uint64(uint64(v.Days()))
	}
}

// Tuple appends a counted list of values.
func (b *Buffer) Tuple(t types.Tuple) {
	b.Uint32(uint32(len(t)))
	for _, v := range t {
		b.Value(v)
	}
}

// --- payload reading ---------------------------------------------------------

// Cursor reads a message payload sequentially. The first decoding error
// sticks: every later read reports it, so call sites can decode a whole
// message and check the error once.
type Cursor struct {
	b   []byte
	pos int
	err error
}

// NewCursor wraps a payload for reading.
func NewCursor(b []byte) *Cursor { return &Cursor{b: b} }

// Err returns the first decoding error, if any.
func (c *Cursor) Err() error { return c.err }

// Remaining returns how many undecoded bytes are left. Payloads are allowed
// to carry more than a decoder reads (minor versions append fields), so this
// is for optional tails, not validation.
func (c *Cursor) Remaining() int {
	if c.err != nil {
		return 0
	}
	return len(c.b) - c.pos
}

func (c *Cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.pos+n > len(c.b) {
		c.err = fmt.Errorf("wire: truncated message (want %d bytes at offset %d of %d)", n, c.pos, len(c.b))
		return nil
	}
	out := c.b[c.pos : c.pos+n]
	c.pos += n
	return out
}

// Uint32 reads a fixed-width 32-bit integer.
func (c *Cursor) Uint32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a fixed-width 64-bit integer.
func (c *Cursor) Uint64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Byte reads one byte.
func (c *Cursor) Byte() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (c *Cursor) Bool() bool { return c.Byte() != 0 }

// String reads a length-prefixed string.
func (c *Cursor) String() string {
	n := c.Uint32()
	if c.err != nil {
		return ""
	}
	b := c.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte blob. The returned slice aliases the
// payload; callers that outlive the frame must copy it.
func (c *Cursor) Bytes() []byte {
	n := c.Uint32()
	if c.err != nil {
		return nil
	}
	return c.take(int(n))
}

// Strings reads a counted list of strings.
func (c *Cursor) Strings() []string {
	n := c.Uint32()
	if c.err != nil {
		return nil
	}
	out := make([]string, 0, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		out = append(out, c.String())
		if c.err != nil {
			return nil
		}
	}
	return out
}

// Value reads one SQL value.
func (c *Cursor) Value() types.Value {
	kind := types.Kind(c.Byte())
	if c.err != nil {
		return types.Null()
	}
	switch kind {
	case types.KindNull:
		return types.Null()
	case types.KindInt:
		return types.NewInt(int64(c.Uint64()))
	case types.KindFloat:
		return types.NewFloat(math.Float64frombits(c.Uint64()))
	case types.KindString:
		return types.NewString(c.String())
	case types.KindBool:
		return types.NewBool(c.Bool())
	case types.KindDate:
		return types.NewDateFromDays(int64(c.Uint64()))
	default:
		c.err = fmt.Errorf("wire: unknown value kind %d", kind)
		return types.Null()
	}
}

// Tuple reads a counted list of values.
func (c *Cursor) Tuple() types.Tuple {
	n := c.Uint32()
	if c.err != nil {
		return nil
	}
	out := make(types.Tuple, 0, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		out = append(out, c.Value())
		if c.err != nil {
			return nil
		}
	}
	return out
}
