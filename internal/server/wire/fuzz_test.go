package wire

import (
	"bytes"
	"testing"
)

// FuzzFrame round-trips the frame layer and the value codec over arbitrary
// bytes. Two properties must hold for any input:
//
//  1. A frame that reads back cleanly re-encodes to the identical byte
//     stream (framing is canonical), and re-reads to the same type and
//     payload.
//  2. If the payload decodes as a value tuple, one encode normalises it:
//     encoding the decoded tuple and decoding/encoding again must produce
//     identical bytes (the codec reaches a fixed point after one pass, so
//     peers never disagree about a re-encoded message).
func FuzzFrame(f *testing.F) {
	// A well-formed Prepare frame.
	f.Add([]byte("\x00\x00\x00\x09\x01SELECT 1"))
	// A well-formed v2 Hello frame: magic "WOW!", version 2.0.
	f.Add([]byte("\x00\x00\x00\x0d\x0aWOW!\x00\x00\x00\x02\x00\x00\x00\x00"))
	// Truncated length prefix, hostile length, zero length.
	f.Add([]byte("\x00\x00"))
	f.Add([]byte("\xff\xff\xff\xff"))
	f.Add([]byte("\x00\x00\x00\x00"))
	// An ExecBatch frame: stmt 1, one row of (int 7, string "x").
	var batch Buffer
	batch.Uint32(1)
	batch.Uint32(1)
	batch.Uint32(2)
	batch.Byte(1) // KindInt
	batch.Uint64(7)
	batch.Byte(3) // KindString
	batch.String("x")
	var frame bytes.Buffer
	if err := WriteFrame(&frame, MsgExecBatch, batch.B); err != nil {
		f.Fatal(err)
	}
	f.Add(frame.Bytes())

	// Replication frames (v2.2). A Subscribe at the hostile maximum LSN, a
	// WALSegment whose declared body runs past the frame, a duplicate pair
	// of Subscribe frames back to back, and a well-formed ReplicaStatus.
	var sub Buffer
	Subscribe{StartLSN: ^uint64(0)}.Encode(&sub)
	var subFrame bytes.Buffer
	if err := WriteFrame(&subFrame, MsgSubscribe, sub.B); err != nil {
		f.Fatal(err)
	}
	f.Add(subFrame.Bytes())
	f.Add(append(subFrame.Bytes(), subFrame.Bytes()...))
	var seg Buffer
	seg.Uint64(4096)
	seg.Uint32(100) // declares 100 body bytes...
	var segFrame bytes.Buffer
	if err := WriteFrame(&segFrame, MsgWALSegment, append(seg.B, "short"...)); err != nil { // ...carries 5
		f.Fatal(err)
	}
	f.Add(segFrame.Bytes())
	var okSeg Buffer
	WALSegment{StartLSN: 8, Data: []byte("\x03\x00\x00\x00\x00rec")}.Encode(&okSeg)
	var okSegFrame bytes.Buffer
	if err := WriteFrame(&okSegFrame, MsgWALSegment, okSeg.B); err != nil {
		f.Fatal(err)
	}
	f.Add(okSegFrame.Bytes())
	var status Buffer
	ReplicaStatus{AppliedLSN: 1 << 40}.Encode(&status)
	var statusFrame bytes.Buffer
	if err := WriteFrame(&statusFrame, MsgReplicaStatus, status.B); err != nil {
		f.Fatal(err)
	}
	f.Add(statusFrame.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, msgType, payload); err != nil {
			t.Fatalf("a frame that read cleanly failed to re-encode: %v", err)
		}
		if want := data[:out.Len()]; !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("re-encoded frame differs from the wire bytes:\n got %x\nwant %x", out.Bytes(), want)
		}
		msgType2, payload2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-reading a re-encoded frame failed: %v", err)
		}
		if msgType2 != msgType || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame round trip changed the message: type 0x%02x->0x%02x", msgType, msgType2)
		}

		// Replication messages must decode without panicking on any payload,
		// and a payload that decodes cleanly must re-encode canonically —
		// the replica applier trusts these structs to carry exactly what the
		// wire said.
		switch msgType {
		case MsgSubscribe:
			c := NewCursor(payload)
			sub := DecodeSubscribe(c)
			if c.Err() == nil && c.Remaining() == 0 {
				var re Buffer
				sub.Encode(&re)
				if !bytes.Equal(re.B, payload) {
					t.Fatalf("Subscribe re-encode differs:\n got %x\nwant %x", re.B, payload)
				}
			}
		case MsgReplicaStatus:
			c := NewCursor(payload)
			st := DecodeReplicaStatus(c)
			if c.Err() == nil && c.Remaining() == 0 {
				var re Buffer
				st.Encode(&re)
				if !bytes.Equal(re.B, payload) {
					t.Fatalf("ReplicaStatus re-encode differs:\n got %x\nwant %x", re.B, payload)
				}
			}
		case MsgWALSegment:
			c := NewCursor(payload)
			seg := DecodeWALSegment(c)
			if c.Err() == nil && c.Remaining() == 0 {
				var re Buffer
				seg.Encode(&re)
				if !bytes.Equal(re.B, payload) {
					t.Fatalf("WALSegment re-encode differs:\n got %x\nwant %x", re.B, payload)
				}
				if len(seg.Data) > len(payload) {
					t.Fatalf("WALSegment decoded %d body bytes out of a %d-byte payload", len(seg.Data), len(payload))
				}
			}
		}

		// Value-codec fixed point: if the payload parses as a tuple, one
		// encode normalises it.
		c := NewCursor(payload)
		tuple := c.Tuple()
		if c.Err() != nil {
			return
		}
		var enc1 Buffer
		enc1.Tuple(tuple)
		c2 := NewCursor(enc1.B)
		tuple2 := c2.Tuple()
		if c2.Err() != nil {
			t.Fatalf("encoded tuple failed to decode: %v", c2.Err())
		}
		var enc2 Buffer
		enc2.Tuple(tuple2)
		if !bytes.Equal(enc1.B, enc2.B) {
			t.Fatalf("tuple codec has no fixed point:\nfirst  %x\nsecond %x", enc1.B, enc2.B)
		}
	})
}
