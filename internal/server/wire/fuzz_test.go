package wire

import (
	"bytes"
	"testing"
)

// FuzzFrame round-trips the frame layer and the value codec over arbitrary
// bytes. Two properties must hold for any input:
//
//  1. A frame that reads back cleanly re-encodes to the identical byte
//     stream (framing is canonical), and re-reads to the same type and
//     payload.
//  2. If the payload decodes as a value tuple, one encode normalises it:
//     encoding the decoded tuple and decoding/encoding again must produce
//     identical bytes (the codec reaches a fixed point after one pass, so
//     peers never disagree about a re-encoded message).
func FuzzFrame(f *testing.F) {
	// A well-formed Prepare frame.
	f.Add([]byte("\x00\x00\x00\x09\x01SELECT 1"))
	// A well-formed v2 Hello frame: magic "WOW!", version 2.0.
	f.Add([]byte("\x00\x00\x00\x0d\x0aWOW!\x00\x00\x00\x02\x00\x00\x00\x00"))
	// Truncated length prefix, hostile length, zero length.
	f.Add([]byte("\x00\x00"))
	f.Add([]byte("\xff\xff\xff\xff"))
	f.Add([]byte("\x00\x00\x00\x00"))
	// An ExecBatch frame: stmt 1, one row of (int 7, string "x").
	var batch Buffer
	batch.Uint32(1)
	batch.Uint32(1)
	batch.Uint32(2)
	batch.Byte(1) // KindInt
	batch.Uint64(7)
	batch.Byte(3) // KindString
	batch.String("x")
	var frame bytes.Buffer
	if err := WriteFrame(&frame, MsgExecBatch, batch.B); err != nil {
		f.Fatal(err)
	}
	f.Add(frame.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, msgType, payload); err != nil {
			t.Fatalf("a frame that read cleanly failed to re-encode: %v", err)
		}
		if want := data[:out.Len()]; !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("re-encoded frame differs from the wire bytes:\n got %x\nwant %x", out.Bytes(), want)
		}
		msgType2, payload2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-reading a re-encoded frame failed: %v", err)
		}
		if msgType2 != msgType || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame round trip changed the message: type 0x%02x->0x%02x", msgType, msgType2)
		}

		// Value-codec fixed point: if the payload parses as a tuple, one
		// encode normalises it.
		c := NewCursor(payload)
		tuple := c.Tuple()
		if c.Err() != nil {
			return
		}
		var enc1 Buffer
		enc1.Tuple(tuple)
		c2 := NewCursor(enc1.B)
		tuple2 := c2.Tuple()
		if c2.Err() != nil {
			t.Fatalf("encoded tuple failed to decode: %v", c2.Err())
		}
		var enc2 Buffer
		enc2.Tuple(tuple2)
		if !bytes.Equal(enc1.B, enc2.B) {
			t.Fatalf("tuple codec has no fixed point:\nfirst  %x\nsecond %x", enc1.B, enc2.B)
		}
	})
}
