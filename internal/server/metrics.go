package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/engine"
	"repro/internal/server/wire"
)

// wireVersionString names the protocol version the server speaks, for the
// metrics document.
func wireVersionString() string { return "v" + wire.Current.String() }

// Metrics is the JSON document the -metrics endpoint serves: the server's
// connection/protocol counters, the engine's statement and transaction
// counters, and the shared plan cache's current size. Every field is a
// monotonic counter or a gauge snapshot — scrape it periodically and diff.
type Metrics struct {
	Server       Stats        `json:"server"`
	Engine       engine.Stats `json:"engine"`
	PlanCacheLen int          `json:"plan_cache_len"`
	Protocol     string       `json:"protocol"`
}

// Metrics returns the current metrics snapshot.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Server:       s.Stats(),
		Engine:       s.db.Stats(),
		PlanCacheLen: s.db.PlanCacheLen(),
		Protocol:     wireVersionString(),
	}
}

// MetricsHandler serves the metrics snapshot as JSON — mount it on a
// side-channel HTTP listener (wowserver -metrics), never on the wire-protocol
// port.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Metrics()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
