// Package server is the wire-protocol front end over one shared engine: a
// TCP session manager that gives every connection its own engine.Session —
// run by one goroutine per connection — while all connections share the
// engine's plan cache, lock manager and storage. The protocol (package wire)
// maps 1:1 onto the prepared-statement lifecycle, so a remote client pays one
// round trip per Prepare/Bind/Execute and streams result rows in fetch
// batches instead of materialising them; ExecBatch array-binds a whole bulk
// load into one round trip and one transaction.
//
// Every connection opens with a protocol handshake: the first frame must be
// a Hello carrying the wire magic and the client's version. A compatible
// major gets HelloOK (with the negotiated version and the server banner); an
// unknown major — or no Hello at all, which is how a pre-v2 client looks —
// is refused with a versioned error frame and the connection closes.
//
// Disconnects — clean, abrupt, or a panicking connection goroutine — always
// run the same cleanup path: open cursors close (releasing their read
// leases), prepared statements close, and any open explicit transaction
// rolls back, so an abandoned connection can never keep holding locks
// against the other sessions.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/server/wire"
	"repro/internal/types"
)

// Server accepts connections and serves the wire protocol over a database.
type Server struct {
	db *engine.Database

	// lsn reports the durable LSN the server appends to v2.2 response frames:
	// on a primary the WAL's durable frontier, on a replica the applier's
	// applied LSN. Set before Serve (SetLSNSource), read by every connection.
	lsn func() uint64
	// readOnly marks a replica server: writes, DDL and explicit transactions
	// are refused so the only mutations come from the replication applier.
	readOnly atomic.Bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted    atomic.Uint64
	active      atomic.Int64
	statements  atomic.Uint64
	rowsSent    atomic.Uint64
	panics      atomic.Uint64
	handshakes  atomic.Uint64
	rejected    atomic.Uint64
	batchRowsIn atomic.Uint64
	batchFrames atomic.Uint64

	subscribers    atomic.Int64
	walSegments    atomic.Uint64
	walBytes       atomic.Uint64
	replicaAckLSN  atomic.Uint64
	readOnlyDenied atomic.Uint64
}

// Stats summarises the server's counters.
type Stats struct {
	ConnectionsAccepted uint64
	ConnectionsActive   int64
	MessagesServed      uint64
	RowsSent            uint64
	Panics              uint64
	// HandshakesAccepted and HandshakesRejected count protocol negotiation
	// outcomes; a rejected handshake is a version mismatch or a pre-v2
	// client that never sent a Hello.
	HandshakesAccepted uint64
	HandshakesRejected uint64
	// BatchFrames counts ExecBatch messages served; BatchRowsReceived the
	// parameter rows they carried.
	BatchFrames       uint64
	BatchRowsReceived uint64
	// ReadOnly reports replica mode; ReadOnlyDenied counts the writes,
	// DDL and transaction-control messages it refused.
	ReadOnly       bool
	ReadOnlyDenied uint64
	// DurableLSN is the value the server currently piggybacks on v2.2
	// responses: the WAL durable frontier (primary) or applied LSN (replica).
	DurableLSN uint64
	// WALSubscribers counts live replication streams; WALSegmentsSent and
	// WALBytesSent their pushed traffic; ReplicaAckLSN the highest applied
	// LSN any subscriber has acknowledged.
	WALSubscribers  int64
	WALSegmentsSent uint64
	WALBytesSent    uint64
	ReplicaAckLSN   uint64
}

// New creates a server over the database. The database stays owned by the
// caller (Close does not close it): embedding processes can keep serving
// local sessions next to remote ones.
func New(db *engine.Database) *Server {
	s := &Server{db: db, conns: make(map[net.Conn]struct{})}
	// Default LSN source: the engine's WAL durable frontier (0 when logging
	// is disabled). Replica servers override it with the applier's frontier.
	s.lsn = func() uint64 { return uint64(db.Transactions().WAL().DurableLSN()) }
	return s
}

// SetLSNSource overrides where the server reads the durable LSN it appends
// to v2.2 responses. Must be called before Serve.
func (s *Server) SetLSNSource(fn func() uint64) { s.lsn = fn }

// SetReadOnly switches the server into replica mode: every write, DDL and
// explicit-transaction message is refused with a statement-level error, so
// the replication applier stays the only writer and reads see nothing but
// clean snapshots of applied commits.
func (s *Server) SetReadOnly(on bool) { s.readOnly.Store(on) }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnectionsAccepted: s.accepted.Load(),
		ConnectionsActive:   s.active.Load(),
		MessagesServed:      s.statements.Load(),
		RowsSent:            s.rowsSent.Load(),
		Panics:              s.panics.Load(),
		HandshakesAccepted:  s.handshakes.Load(),
		HandshakesRejected:  s.rejected.Load(),
		BatchFrames:         s.batchFrames.Load(),
		BatchRowsReceived:   s.batchRowsIn.Load(),
		ReadOnly:            s.readOnly.Load(),
		ReadOnlyDenied:      s.readOnlyDenied.Load(),
		DurableLSN:          s.lsn(),
		WALSubscribers:      s.subscribers.Load(),
		WALSegmentsSent:     s.walSegments.Load(),
		WALBytesSent:        s.walBytes.Load(),
		ReplicaAckLSN:       s.replicaAckLSN.Load(),
	}
}

// ListenAndServe listens on the TCP address and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on the listener until it is closed, running one
// goroutine per connection. It returns nil after Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		go s.serveConn(nc)
	}
}

// Addr returns the listener's address (nil before Serve), so tests and
// embedding processes can serve on port 0 and dial what they got.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, disconnects every connection and waits for their
// goroutines to finish cleanup. The database itself stays open.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// conn is one connection's state: its session, its prepared statements and
// its open cursors, keyed by the client-visible ids.
type conn struct {
	srv     *Server
	nc      net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	session *engine.Session
	stmts   map[uint32]*engine.Stmt
	cursors map[uint32]*engine.Rows
	nextID  uint32
	// version is the handshake-negotiated protocol version; minor-gated
	// behavior (cursor responses for RETURNING writes) keys off it.
	version wire.Version
}

// serveConn runs one connection's message loop and always — clean EOF, read
// error, protocol error or panic — tears the connection's engine state down
// before returning.
func (s *Server) serveConn(nc net.Conn) {
	c := &conn{
		srv:     s,
		nc:      nc,
		r:       bufio.NewReader(nc),
		w:       bufio.NewWriter(nc),
		session: s.db.Session(),
		stmts:   make(map[uint32]*engine.Stmt),
		cursors: make(map[uint32]*engine.Rows),
	}
	// Registered first so it always runs, even if the cleanup itself panics:
	// a lost wg.Done would hang Server.Close forever.
	defer func() {
		s.active.Add(-1)
		s.wg.Done()
	}()
	defer func() {
		if r := recover(); r != nil {
			// A panicking handler must not take the whole server down, and
			// must still release the connection's locks.
			s.panics.Add(1)
		}
		// Cleanup runs over whatever state the handler left behind; if that
		// state is broken enough that cleanup panics too, contain it — the
		// transaction manager's lock release is the part that must not be
		// skipped for other connections to make progress, and a second panic
		// here would otherwise crash the whole process.
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
			}
		}()
		c.cleanup()
	}()
	if !c.handshake() {
		return
	}
	for {
		msgType, payload, err := wire.ReadFrame(c.r)
		if err != nil {
			return // EOF or a broken connection: cleanup runs in the defer
		}
		s.statements.Add(1)
		switch msgType {
		case wire.MsgSubscribe:
			// A successful Subscribe ends request/response for good: the
			// connection becomes a push stream and, when the stream ends,
			// closes. A refused Subscribe keeps the connection usable.
			if c.handleSubscribe(payload) {
				return
			}
			continue
		}
		respType, resp := c.dispatch(msgType, payload)
		// v2.2 append-only tail: the server's durable LSN rides on every
		// success response, so clients track each node's frontier for free
		// and fleet routing can bound read staleness without extra probes.
		if c.version.Minor >= 2 {
			switch respType {
			case wire.MsgResult, wire.MsgCursor, wire.MsgRows, wire.MsgOK:
				resp = binary.BigEndian.AppendUint64(resp, s.lsn())
			}
		}
		if err := wire.WriteFrame(c.w, respType, resp); err != nil {
			return
		}
		if err := c.w.Flush(); err != nil {
			return
		}
	}
}

// Banner identifies the server in HelloOK frames and the wowserver startup
// line.
var Banner = "wowserver/" + wire.Current.String()

// handshake negotiates the protocol version: the first frame must be a Hello
// with the wire magic and a compatible major. It reports whether the
// connection may proceed to the message loop; on refusal the versioned error
// frame has already been written and the caller just returns (cleanup runs in
// its defer).
func (c *conn) handshake() bool {
	msgType, payload, err := wire.ReadFrame(c.r)
	if err != nil {
		return false
	}
	refuse := func(client wire.Version) bool {
		c.srv.rejected.Add(1)
		ve := &wire.VersionError{Client: client, Server: wire.Current}
		if err := wire.WriteFrame(c.w, wire.MsgErr, wire.EncodeVersionError(ve)); err == nil {
			c.w.Flush()
		}
		return false
	}
	if msgType != wire.MsgHello {
		// A pre-v2 client starts straight in with Prepare/Begin; anything else
		// that is not a Hello gets the same refusal.
		return refuse(wire.Version{})
	}
	cur := wire.NewCursor(payload)
	hello := wire.DecodeHello(cur)
	if cur.Err() != nil || hello.Magic != wire.HelloMagic {
		return refuse(wire.Version{})
	}
	if !wire.Current.Compatible(hello.Version) {
		return refuse(hello.Version)
	}
	// Negotiated version: the server's major (equal by now), the smaller
	// minor — the set of payload fields both ends understand.
	negotiated := wire.Current
	if hello.Version.Minor < negotiated.Minor {
		negotiated.Minor = hello.Version.Minor
	}
	c.version = negotiated
	role := wire.RolePrimary
	if c.srv.readOnly.Load() {
		role = wire.RoleReplica
	}
	var b wire.Buffer
	wire.HelloOK{Version: negotiated, Banner: Banner, Role: role}.Encode(&b)
	if err := wire.WriteFrame(c.w, wire.MsgHelloOK, b.B); err != nil {
		return false
	}
	if err := c.w.Flush(); err != nil {
		return false
	}
	c.srv.handshakes.Add(1)
	return true
}

// cleanup releases everything the connection holds against the shared
// engine: cursors (and their read leases), statements, and any open explicit
// transaction, which rolls back.
func (c *conn) cleanup() {
	for id, rows := range c.cursors {
		rows.Close()
		delete(c.cursors, id)
	}
	for id, st := range c.stmts {
		st.Close()
		delete(c.stmts, id)
	}
	_ = c.session.Close()
	c.srv.mu.Lock()
	delete(c.srv.conns, c.nc)
	c.srv.mu.Unlock()
	c.nc.Close()
}

// errFrame renders an error as a MsgErr payload.
func errFrame(err error) (byte, []byte) {
	var b wire.Buffer
	b.String(err.Error())
	return wire.MsgErr, b.B
}

// dispatch handles one message and returns the response frame. Statement
// errors come back as MsgErr frames; the connection itself stays usable
// (framing is self-delimiting, so a bad payload cannot desync the stream).
func (c *conn) dispatch(msgType byte, payload []byte) (byte, []byte) {
	cur := wire.NewCursor(payload)
	switch msgType {
	case wire.MsgPrepare:
		return c.handlePrepare(cur)
	case wire.MsgBind:
		return c.handleBind(cur)
	case wire.MsgExecute:
		return c.handleExecute(cur)
	case wire.MsgFetch:
		return c.handleFetch(cur)
	case wire.MsgCloseStmt:
		id := cur.Uint32()
		if err := cur.Err(); err != nil {
			return errFrame(err)
		}
		if st, ok := c.stmts[id]; ok {
			st.Close()
			delete(c.stmts, id)
		}
		return wire.MsgOK, nil
	case wire.MsgCloseCursor:
		id := cur.Uint32()
		if err := cur.Err(); err != nil {
			return errFrame(err)
		}
		if rows, ok := c.cursors[id]; ok {
			rows.Close()
			delete(c.cursors, id)
		}
		return wire.MsgOK, nil
	case wire.MsgExecBatch:
		return c.handleExecBatch(cur)
	case wire.MsgPing:
		return wire.MsgOK, nil
	case wire.MsgHello:
		// The handshake already ran; a second Hello is a protocol error, but
		// not one worth dropping the connection for.
		return errFrame(fmt.Errorf("server: duplicate Hello (handshake already negotiated v%s)", wire.Current))
	case wire.MsgBegin:
		// Explicit transactions exist to write; a replica pins them to the
		// primary rather than hand out a transaction that must fail later.
		if c.srv.readOnly.Load() {
			return c.refuseReadOnly("BEGIN")
		}
		return c.execText("BEGIN")
	case wire.MsgCommit:
		if c.srv.readOnly.Load() {
			return c.refuseReadOnly("COMMIT")
		}
		return c.execText("COMMIT")
	case wire.MsgRollback:
		if c.srv.readOnly.Load() {
			return c.refuseReadOnly("ROLLBACK")
		}
		return c.execText("ROLLBACK")
	default:
		return errFrame(fmt.Errorf("server: unknown message type 0x%02x", msgType))
	}
}

func (c *conn) handlePrepare(cur *wire.Cursor) (byte, []byte) {
	text := cur.String()
	if err := cur.Err(); err != nil {
		return errFrame(err)
	}
	st, err := c.session.Prepare(text)
	if err != nil {
		return errFrame(err)
	}
	c.nextID++
	id := c.nextID
	c.stmts[id] = st
	var b wire.Buffer
	b.Uint32(id)
	b.Strings(st.ParamNames())
	b.Strings(st.Columns())
	// v2.1 append-only tail: whether Execute will produce rows (SELECT or a
	// RETURNING write). 2.0 decoders stop before it.
	b.Bool(st.ReturnsRows())
	// v2.2 tail: whether the statement is a pure SELECT — the only kind a
	// client may pipeline Bind+Execute for, since a failed Bind would let the
	// Execute run with stale parameters and a SELECT is the only statement
	// where that has no side effects.
	b.Bool(st.IsQuery())
	return wire.MsgStmt, b.B
}

// refuseReadOnly answers a mutating message on a replica server.
func (c *conn) refuseReadOnly(what string) (byte, []byte) {
	c.srv.readOnlyDenied.Add(1)
	return errFrame(fmt.Errorf("server: read-only replica: cannot run %q here; writes and transactions go to the primary", what))
}

func (c *conn) handleBind(cur *wire.Cursor) (byte, []byte) {
	id := cur.Uint32()
	args := cur.Tuple()
	if err := cur.Err(); err != nil {
		return errFrame(err)
	}
	st, ok := c.stmts[id]
	if !ok {
		return errFrame(fmt.Errorf("server: no statement %d", id))
	}
	if err := st.Bind(args...); err != nil {
		return errFrame(err)
	}
	return wire.MsgOK, nil
}

func (c *conn) handleExecute(cur *wire.Cursor) (byte, []byte) {
	id := cur.Uint32()
	if err := cur.Err(); err != nil {
		return errFrame(err)
	}
	st, ok := c.stmts[id]
	if !ok {
		return errFrame(fmt.Errorf("server: no statement %d", id))
	}
	// A replica serves nothing but pure SELECTs: DML, DDL, EXPLAIN and
	// transaction control all belong on the primary.
	if !st.IsQuery() && c.srv.readOnly.Load() {
		return c.refuseReadOnly(st.Text())
	}
	// SELECTs always answer with a cursor. RETURNING writes do too on a v2.1
	// connection, streaming the projected rows in fetch batches; a v2.0 peer
	// instead gets a Result frame with the rows materialised inline — that
	// payload has carried columns + rows since 2.0 (EXPLAIN uses them), so no
	// new decoding is asked of the old client.
	if st.IsQuery() || (st.ReturnsRows() && c.version.Minor >= 1) {
		rows, err := st.Query()
		if err != nil {
			return errFrame(err)
		}
		c.nextID++
		cid := c.nextID
		c.cursors[cid] = rows
		var b wire.Buffer
		b.Uint32(cid)
		b.Strings(rows.Columns())
		return wire.MsgCursor, b.B
	}
	res, err := st.Exec()
	if err != nil {
		return errFrame(err)
	}
	return resultFrame(res, &c.srv.rowsSent)
}

// handleExecBatch array-binds one prepared DML statement across every
// parameter row in the frame — the whole batch is one round trip and (outside
// an explicit transaction) one autocommit transaction on the engine side.
func (c *conn) handleExecBatch(cur *wire.Cursor) (byte, []byte) {
	id := cur.Uint32()
	n := cur.Uint32()
	if err := cur.Err(); err != nil {
		return errFrame(err)
	}
	// Look the statement up before decoding: a bogus id must not cost a full
	// payload decode (nor mask the real error with a truncation one).
	st, ok := c.stmts[id]
	if !ok {
		return errFrame(fmt.Errorf("server: no statement %d", id))
	}
	if c.srv.readOnly.Load() {
		return c.refuseReadOnly(st.Text())
	}
	// The row count is bounded by what the frame can physically hold (a row
	// is at least its own 4-byte count), so a hostile count fails decoding
	// instead of allocating unboundedly.
	if int(n) > cur.Remaining()/4+1 {
		return errFrame(fmt.Errorf("server: ExecBatch claims %d rows but only %d payload bytes follow", n, cur.Remaining()))
	}
	rows := make([][]types.Value, 0, n)
	for i := uint32(0); i < n; i++ {
		row := cur.Tuple()
		if err := cur.Err(); err != nil {
			return errFrame(fmt.Errorf("server: ExecBatch row %d: %w", i, err))
		}
		rows = append(rows, row)
	}
	res, err := st.ExecBatch(rows)
	if err != nil {
		return errFrame(err)
	}
	c.srv.batchFrames.Add(1)
	c.srv.batchRowsIn.Add(uint64(len(rows)))
	return resultFrame(res, &c.srv.rowsSent)
}

func (c *conn) handleFetch(cur *wire.Cursor) (byte, []byte) {
	id := cur.Uint32()
	maxRows := cur.Uint32()
	if err := cur.Err(); err != nil {
		return errFrame(err)
	}
	rows, ok := c.cursors[id]
	if !ok {
		return errFrame(fmt.Errorf("server: no cursor %d", id))
	}
	if maxRows == 0 {
		maxRows = 1
	}
	// Rows encode as they are pulled, bounded by both the client's row count
	// and a byte budget: a batch of wide rows must never grow past the frame
	// cap, or WriteFrame would fail and take the whole connection down. A
	// short batch just means the client fetches again.
	const batchByteBudget = 4 << 20
	var rowsBuf wire.Buffer
	count := 0
	done := false
	for uint32(count) < maxRows && len(rowsBuf.B) < batchByteBudget {
		if !rows.Next() {
			done = true
			break
		}
		// Row is valid until the next Next, and it is encoded before the next
		// pull, so no copy is needed.
		rowsBuf.Tuple(rows.Row())
		count++
	}
	if done {
		err := rows.Err()
		delete(c.cursors, id) // Next returning false closed the cursor
		if err != nil {
			return errFrame(err)
		}
	}
	var b wire.Buffer
	b.Bool(done)
	b.Uint32(uint32(count))
	b.B = append(b.B, rowsBuf.B...)
	if len(b.B)+16 > wire.MaxFrame {
		// A single row larger than a frame can never be shipped; fail the
		// statement, not the connection.
		rows.Close()
		delete(c.cursors, id)
		return errFrame(fmt.Errorf("server: result row exceeds the %d-byte frame limit", wire.MaxFrame))
	}
	c.srv.rowsSent.Add(uint64(count))
	return wire.MsgRows, b.B
}

// execText runs a statement given as text (transaction control) and returns
// its result frame.
func (c *conn) execText(text string) (byte, []byte) {
	res, err := c.session.Execute(text)
	if err != nil {
		return errFrame(err)
	}
	return resultFrame(res, &c.srv.rowsSent)
}

// resultFrame renders a materialised result (DML counts, DDL messages,
// EXPLAIN rows) as a MsgResult payload.
func resultFrame(res *engine.Result, rowsSent *atomic.Uint64) (byte, []byte) {
	var b wire.Buffer
	b.Uint64(uint64(res.RowsAffected))
	b.String(res.Message)
	b.Strings(res.Columns)
	b.Uint32(uint32(len(res.Rows)))
	for _, t := range res.Rows {
		b.Tuple(t)
	}
	rowsSent.Add(uint64(len(res.Rows)))
	return wire.MsgResult, b.B
}
