package tui

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestScreenBasics(t *testing.T) {
	s := NewScreen(20, 5)
	if s.Width() != 20 || s.Height() != 5 {
		t.Fatalf("size = %dx%d", s.Width(), s.Height())
	}
	s.DrawText(1, 2, "hello", StyleBold)
	if got := s.Line(1); got != "  hello" {
		t.Errorf("Line(1) = %q", got)
	}
	if cell := s.CellAt(1, 2); cell.Ch != 'h' || cell.Style != StyleBold {
		t.Errorf("CellAt = %+v", cell)
	}
	// Out-of-bounds writes and reads are safe.
	s.SetCell(100, 100, 'x', StyleNone)
	if cell := s.CellAt(-1, -1); cell.Ch != ' ' {
		t.Errorf("out-of-bounds cell = %+v", cell)
	}
	if !strings.Contains(s.String(), "hello") {
		t.Error("String() should include drawn text")
	}
}

func TestScreenClipping(t *testing.T) {
	s := NewScreen(10, 2)
	s.DrawText(0, 6, "overflowing", StyleNone)
	if got := s.Line(0); got != "      over" {
		t.Errorf("clipped line = %q", got)
	}
}

func TestScreenStats(t *testing.T) {
	s := NewScreen(10, 10)
	s.ResetStats()
	s.DrawText(0, 0, "12345", StyleNone)
	s.Flush()
	if s.CellsPainted() != 5 || s.Repaints() != 1 {
		t.Errorf("painted = %d repaints = %d", s.CellsPainted(), s.Repaints())
	}
	s.ResetStats()
	if s.CellsPainted() != 0 {
		t.Error("ResetStats should zero counters")
	}
}

func TestDrawBoxAndFill(t *testing.T) {
	s := NewScreen(20, 6)
	s.DrawBox(0, 0, 5, 12, "Orders", StyleNone)
	top := s.Line(0)
	if !strings.HasPrefix(top, "+") || !strings.Contains(top, "Orders") {
		t.Errorf("box top = %q", top)
	}
	if s.CellAt(4, 0).Ch != '+' || s.CellAt(2, 11).Ch != '|' {
		t.Error("box corners/edges missing")
	}
	s.FillRegion(1, 1, 3, 10, '.', StyleNone)
	if s.CellAt(2, 5).Ch != '.' {
		t.Error("fill missing")
	}
	// Degenerate boxes are ignored.
	s.DrawBox(0, 0, 1, 1, "", StyleNone)
}

func TestDiffAndSnapshot(t *testing.T) {
	a := NewScreen(10, 3)
	b := a.Snapshot()
	a.DrawText(0, 0, "abc", StyleNone)
	n, err := Diff(a, b)
	if err != nil || n != 3 {
		t.Errorf("Diff = %d, %v", n, err)
	}
	if _, err := Diff(a, NewScreen(5, 5)); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestRenderANSI(t *testing.T) {
	s := NewScreen(5, 2)
	s.DrawText(0, 0, "hi", StyleReverse)
	out := s.RenderANSI()
	if !strings.Contains(out, "\x1b[H") || !strings.Contains(out, "7m") {
		t.Errorf("ANSI output = %q", out)
	}
}

func TestKeyScriptRoundTrip(t *testing.T) {
	script := "Ada<TAB>Boston<ENTER><F6><ESC>x"
	events, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len("Ada")+1+len("Boston")+4 {
		t.Errorf("event count = %d", len(events))
	}
	if Script(events) != script {
		t.Errorf("round trip = %q", Script(events))
	}
	if _, err := ParseScript("<NOSUCHKEY>"); err == nil {
		t.Error("unknown key should fail")
	}
	if _, err := ParseScript("<unterminated"); err == nil {
		t.Error("unterminated key should fail")
	}
	// Escaped literal '<'.
	events, err = ParseScript("a<<b")
	if err != nil || len(events) != 3 || events[1].Rune != '<' {
		t.Errorf("escaped < = %v, %v", events, err)
	}
}

func TestParseScriptProperty(t *testing.T) {
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == '<' || r == '>' || r < 32 || r > 126 {
				return 'x'
			}
			return r
		}, s)
		events, err := ParseScript(clean)
		if err != nil {
			return false
		}
		return Script(events) == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeStringAndEventString(t *testing.T) {
	events := TypeString("ab")
	if len(events) != 2 || events[0].Rune != 'a' {
		t.Errorf("TypeString = %v", events)
	}
	if KeyEvent(KeyEnter).String() != "<ENTER>" || RuneEvent('z').String() != "z" {
		t.Error("Event.String wrong")
	}
	if KeyF6.String() != "F6" {
		t.Errorf("KeyF6 = %q", KeyF6.String())
	}
}

func TestTextFieldEditing(t *testing.T) {
	f := &TextField{Row: 0, Col: 0, Width: 10}
	for _, e := range TypeString("Boston") {
		f.HandleKey(e)
	}
	if f.Value != "Boston" || f.Cursor != 6 {
		t.Errorf("value = %q cursor = %d", f.Value, f.Cursor)
	}
	f.HandleKey(KeyEvent(KeyBackspace))
	if f.Value != "Bosto" {
		t.Errorf("after backspace = %q", f.Value)
	}
	f.HandleKey(KeyEvent(KeyHome))
	f.HandleKey(KeyEvent(KeyDelete))
	if f.Value != "osto" {
		t.Errorf("after home+delete = %q", f.Value)
	}
	f.HandleKey(KeyEvent(KeyRight))
	f.HandleKey(RuneEvent('X'))
	if f.Value != "oXsto" {
		t.Errorf("after insert = %q", f.Value)
	}
	f.HandleKey(KeyEvent(KeyEnd))
	if f.Cursor != len(f.Value) {
		t.Errorf("cursor = %d", f.Cursor)
	}
	// Unconsumed keys.
	if f.HandleKey(KeyEvent(KeyEnter)) || f.HandleKey(KeyEvent(KeyTab)) {
		t.Error("ENTER/TAB should not be consumed by the field")
	}
	// Read-only fields ignore edits.
	ro := &TextField{ReadOnly: true}
	if ro.HandleKey(RuneEvent('x')) || ro.Value != "" {
		t.Error("read-only field must ignore input")
	}
}

func TestTextFieldScrollingAndDraw(t *testing.T) {
	s := NewScreen(12, 2)
	f := &TextField{Row: 0, Col: 0, Width: 5, Focused: true}
	f.SetValue("abcdefghij")
	f.Draw(s)
	// The visible window must show the tail of the value with one cell kept
	// free for the cursor (cursor sits at the end of the text).
	if got := s.Line(0); !strings.Contains(got, "ghij") || strings.Contains(got, "abc") {
		t.Errorf("scrolled field = %q", got)
	}
	f.Clear()
	if f.Value != "" || f.Cursor != 0 {
		t.Error("Clear failed")
	}
}

func TestTableGridNavigation(t *testing.T) {
	g := &TableGrid{
		Columns:     []GridColumn{{Title: "id", Width: 4}, {Title: "name", Width: 8}},
		VisibleRows: 3,
		Focused:     true,
	}
	var rows [][]string
	for i := 0; i < 10; i++ {
		rows = append(rows, []string{itoa(i), "row" + itoa(i)})
	}
	g.SetRows(rows)
	g.HandleKey(KeyEvent(KeyDown))
	g.HandleKey(KeyEvent(KeyDown))
	if g.Selected != 2 {
		t.Errorf("Selected = %d", g.Selected)
	}
	g.HandleKey(KeyEvent(KeyPgDn))
	if g.Selected != 5 || g.Offset == 0 {
		t.Errorf("after PgDn: selected=%d offset=%d", g.Selected, g.Offset)
	}
	g.HandleKey(KeyEvent(KeyEnd))
	if g.Selected != 9 {
		t.Errorf("End = %d", g.Selected)
	}
	g.HandleKey(KeyEvent(KeyHome))
	if g.Selected != 0 || g.Offset != 0 {
		t.Errorf("Home = %d/%d", g.Selected, g.Offset)
	}
	g.HandleKey(KeyEvent(KeyUp)) // clamped at top
	if g.Selected != 0 {
		t.Errorf("clamp = %d", g.Selected)
	}
	if g.HandleKey(RuneEvent('x')) {
		t.Error("grids do not consume character keys")
	}

	s := NewScreen(20, 6)
	g.Row, g.Col = 0, 0
	g.Draw(s)
	if !strings.Contains(s.Line(0), "id") || !strings.Contains(s.Line(1), "row0") {
		t.Errorf("grid draw:\n%s", s.String())
	}
}

// TestTableGridShrinkUnderCursor is the regression test for the clamp logic:
// rows are removed from the data set while the selection (and scroll offset)
// sit past the new end. The grid must land the selection on the last
// remaining row, pull the offset back inside the data, and still draw.
func TestTableGridShrinkUnderCursor(t *testing.T) {
	g := &TableGrid{
		Columns:     []GridColumn{{Title: "id", Width: 4}},
		VisibleRows: 3,
		Focused:     true,
	}
	var rows [][]string
	for i := 0; i < 10; i++ {
		rows = append(rows, []string{itoa(i)})
	}
	g.SetRows(rows)
	g.HandleKey(KeyEvent(KeyEnd)) // Selected = 9, Offset = 7
	if g.Selected != 9 || g.Offset != 7 {
		t.Fatalf("before shrink: selected=%d offset=%d", g.Selected, g.Offset)
	}

	// The data set shrinks under the cursor: 10 rows become 2.
	g.SetRows(rows[:2])
	g.ClampSelection()
	if g.Selected != 1 {
		t.Errorf("after shrink: selected = %d, want 1 (the last remaining row)", g.Selected)
	}
	if g.Offset > g.Selected {
		t.Errorf("after shrink: offset %d points past the selection %d", g.Offset, g.Selected)
	}
	s := NewScreen(10, 5)
	g.Draw(s) // must not index past the shrunken data
	if !strings.Contains(s.Line(1), "0") || !strings.Contains(s.Line(2), "1") {
		t.Errorf("after shrink the remaining rows should be visible:\n%s", s.String())
	}

	// Shrinking to empty clamps everything to the origin and still draws.
	g.SetRows(nil)
	g.HandleKey(KeyEvent(KeyDown))
	if g.Selected != 0 || g.Offset != 0 {
		t.Errorf("empty grid: selected=%d offset=%d", g.Selected, g.Offset)
	}
	g.Draw(NewScreen(10, 5))

	// A provider with an unknown row count (-1): End pages forward instead of
	// jumping, and the selection is never forced back to a known end.
	g.Source = openEnded{}
	g.Selected, g.Offset = 0, 0
	g.HandleKey(KeyEvent(KeyEnd))
	if g.Selected != g.VisibleRows {
		t.Errorf("open-ended End: selected = %d, want one page (%d)", g.Selected, g.VisibleRows)
	}
}

// openEnded is a RowProvider that does not know its row count.
type openEnded struct{}

func (openEnded) GridRowCount() int { return -1 }
func (openEnded) GridRow(i int) ([]string, bool) {
	return []string{itoa(i)}, true
}

func TestStatusBarAndLabel(t *testing.T) {
	s := NewScreen(30, 3)
	Label{Row: 0, Col: 1, Text: "Customer", Style: StyleBold}.Draw(s)
	StatusBar{Row: 2, Width: 30, Text: "1 row(s) saved"}.Draw(s)
	if !strings.Contains(s.Line(0), "Customer") || !strings.Contains(s.Line(2), "saved") {
		t.Errorf("draw:\n%s", s.String())
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	digits := ""
	for i > 0 {
		digits = string(rune('0'+i%10)) + digits
		i /= 10
	}
	return digits
}

func BenchmarkFullScreenRepaint(b *testing.B) {
	s := NewScreen(80, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Clear()
		for row := 0; row < 24; row++ {
			s.DrawText(row, 0, "field value and label text for one row of the form", StyleNone)
		}
		s.Flush()
	}
}

func BenchmarkRenderANSI(b *testing.B) {
	s := NewScreen(80, 24)
	for row := 0; row < 24; row++ {
		s.DrawText(row, 0, "some text on the row with style", StyleBold)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := s.RenderANSI(); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}
