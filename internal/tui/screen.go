// Package tui is the display substrate the window manager draws on: a cell
// screen buffer with a diffing repaint model, a small widget set (labels,
// fields, table grids, boxes), and the keyboard event model forms are driven
// by.
//
// The paper's system ran on a bit-mapped terminal of the early 1980s; per the
// reproduction notes this build simulates that display as a character-cell
// screen. Every form and window operation is expressed in terms of cells,
// repaint regions and keystrokes, so the measurements the benchmark harness
// reports (cells painted, repaints, keystrokes per task) carry over.
package tui

import (
	"fmt"
	"strings"
)

// Style is a display attribute for a cell.
type Style uint8

// Styles. They combine as a bit set.
const (
	StyleNone    Style = 0
	StyleReverse Style = 1 << iota
	StyleBold
	StyleUnderline
	StyleDim
)

// Cell is one character cell of the screen.
type Cell struct {
	Ch    rune
	Style Style
}

// Screen is a fixed-size grid of cells with paint statistics.
type Screen struct {
	width, height int
	cells         []Cell
	// painted counts cells written since the last ResetStats; repaints
	// counts Flush calls. The benchmark harness reads both.
	painted  uint64
	repaints uint64
}

// NewScreen creates a cleared screen of the given size.
func NewScreen(width, height int) *Screen {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	s := &Screen{width: width, height: height, cells: make([]Cell, width*height)}
	s.Clear()
	s.ResetStats()
	return s
}

// Width returns the screen width in cells.
func (s *Screen) Width() int { return s.width }

// Height returns the screen height in cells.
func (s *Screen) Height() int { return s.height }

// Clear fills the screen with spaces.
func (s *Screen) Clear() {
	for i := range s.cells {
		s.cells[i] = Cell{Ch: ' '}
	}
	s.painted += uint64(len(s.cells))
}

// ResetStats zeroes the paint counters.
func (s *Screen) ResetStats() { s.painted, s.repaints = 0, 0 }

// CellsPainted returns how many cells have been written since ResetStats.
func (s *Screen) CellsPainted() uint64 { return s.painted }

// Repaints returns how many Flush calls happened since ResetStats.
func (s *Screen) Repaints() uint64 { return s.repaints }

// Flush marks the end of one repaint cycle. A real terminal driver would emit
// the damaged region here; the simulation only counts it.
func (s *Screen) Flush() { s.repaints++ }

// InBounds reports whether the cell coordinate is on the screen.
func (s *Screen) InBounds(row, col int) bool {
	return row >= 0 && row < s.height && col >= 0 && col < s.width
}

// SetCell writes one cell.
func (s *Screen) SetCell(row, col int, ch rune, style Style) {
	if !s.InBounds(row, col) {
		return
	}
	s.cells[row*s.width+col] = Cell{Ch: ch, Style: style}
	s.painted++
}

// CellAt returns the cell at the coordinate (a space cell when out of bounds).
func (s *Screen) CellAt(row, col int) Cell {
	if !s.InBounds(row, col) {
		return Cell{Ch: ' '}
	}
	return s.cells[row*s.width+col]
}

// DrawText writes a string starting at (row, col), clipped to the screen.
func (s *Screen) DrawText(row, col int, text string, style Style) {
	for i, ch := range text {
		s.SetCell(row, col+i, ch, style)
	}
}

// FillRegion fills a rectangle with a character.
func (s *Screen) FillRegion(row, col, height, width int, ch rune, style Style) {
	for r := row; r < row+height; r++ {
		for c := col; c < col+width; c++ {
			s.SetCell(r, c, ch, style)
		}
	}
}

// DrawBox draws a single-line box with optional title on its top border.
func (s *Screen) DrawBox(row, col, height, width int, title string, style Style) {
	if height < 2 || width < 2 {
		return
	}
	for c := col + 1; c < col+width-1; c++ {
		s.SetCell(row, c, '-', style)
		s.SetCell(row+height-1, c, '-', style)
	}
	for r := row + 1; r < row+height-1; r++ {
		s.SetCell(r, col, '|', style)
		s.SetCell(r, col+width-1, '|', style)
	}
	s.SetCell(row, col, '+', style)
	s.SetCell(row, col+width-1, '+', style)
	s.SetCell(row+height-1, col, '+', style)
	s.SetCell(row+height-1, col+width-1, '+', style)
	if title != "" {
		label := " " + title + " "
		if len(label) > width-2 {
			label = label[:width-2]
		}
		s.DrawText(row, col+1, label, style|StyleBold)
	}
}

// Line returns the text content of one screen row with trailing spaces
// trimmed. Tests and the snapshot renderer use it.
func (s *Screen) Line(row int) string {
	if row < 0 || row >= s.height {
		return ""
	}
	var b strings.Builder
	for c := 0; c < s.width; c++ {
		b.WriteRune(s.cells[row*s.width+c].Ch)
	}
	return strings.TrimRight(b.String(), " ")
}

// String renders the whole screen as plain text, one line per row.
func (s *Screen) String() string {
	var b strings.Builder
	for r := 0; r < s.height; r++ {
		b.WriteString(s.Line(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderANSI renders the screen with ANSI escape sequences for styles,
// prefixed by a cursor-home sequence, suitable for writing to a real
// terminal by the interactive tools.
func (s *Screen) RenderANSI() string {
	var b strings.Builder
	b.WriteString("\x1b[H")
	for r := 0; r < s.height; r++ {
		current := StyleNone
		for c := 0; c < s.width; c++ {
			cell := s.cells[r*s.width+c]
			if cell.Style != current {
				b.WriteString(ansiFor(cell.Style))
				current = cell.Style
			}
			b.WriteRune(cell.Ch)
		}
		if current != StyleNone {
			b.WriteString("\x1b[0m")
		}
		b.WriteString("\r\n")
	}
	return b.String()
}

func ansiFor(style Style) string {
	if style == StyleNone {
		return "\x1b[0m"
	}
	var codes []string
	if style&StyleReverse != 0 {
		codes = append(codes, "7")
	}
	if style&StyleBold != 0 {
		codes = append(codes, "1")
	}
	if style&StyleUnderline != 0 {
		codes = append(codes, "4")
	}
	if style&StyleDim != 0 {
		codes = append(codes, "2")
	}
	return "\x1b[0m\x1b[" + strings.Join(codes, ";") + "m"
}

// Diff counts the cells at which the two screens differ; the screens must be
// the same size. The window manager uses it to report damage between frames.
func Diff(a, b *Screen) (int, error) {
	if a.width != b.width || a.height != b.height {
		return 0, fmt.Errorf("tui: cannot diff %dx%d against %dx%d", a.width, a.height, b.width, b.height)
	}
	n := 0
	for i := range a.cells {
		if a.cells[i] != b.cells[i] {
			n++
		}
	}
	return n, nil
}

// Snapshot returns a deep copy of the screen (without its statistics).
func (s *Screen) Snapshot() *Screen {
	out := NewScreen(s.width, s.height)
	copy(out.cells, s.cells)
	out.ResetStats()
	return out
}
