package tui

import (
	"strings"
)

// Label is a static piece of text at a fixed position.
type Label struct {
	Row, Col int
	Text     string
	Style    Style
}

// Draw paints the label.
func (l Label) Draw(s *Screen) {
	s.DrawText(l.Row, l.Col, l.Text, l.Style)
}

// TextField is a single-line editable field: the building block every form
// field is rendered with. It owns its text buffer and cursor; the forms
// runtime feeds it key events while it has focus.
type TextField struct {
	Row, Col int
	Width    int
	// Value is the field's current text.
	Value string
	// Cursor is the insertion position within Value.
	Cursor int
	// Focused fields render in reverse video with a visible cursor.
	Focused bool
	// ReadOnly fields ignore editing keys.
	ReadOnly bool
	// scroll is the index of the first visible character when the value is
	// wider than the field.
	scroll int
}

// SetValue replaces the field's text and moves the cursor to its end.
func (f *TextField) SetValue(v string) {
	f.Value = v
	f.Cursor = len(v)
	f.clampScroll()
}

// Clear empties the field.
func (f *TextField) Clear() { f.SetValue("") }

// HandleKey applies one keystroke to the field and reports whether the field
// consumed it (navigation keys like TAB and ENTER are not consumed; the form
// interprets them).
func (f *TextField) HandleKey(e Event) bool {
	if f.ReadOnly {
		return false
	}
	switch e.Key {
	case KeyRune:
		f.Value = f.Value[:f.Cursor] + string(e.Rune) + f.Value[f.Cursor:]
		f.Cursor++
	case KeyBackspace:
		if f.Cursor > 0 {
			f.Value = f.Value[:f.Cursor-1] + f.Value[f.Cursor:]
			f.Cursor--
		}
	case KeyDelete:
		if f.Cursor < len(f.Value) {
			f.Value = f.Value[:f.Cursor] + f.Value[f.Cursor+1:]
		}
	case KeyLeft:
		if f.Cursor > 0 {
			f.Cursor--
		}
	case KeyRight:
		if f.Cursor < len(f.Value) {
			f.Cursor++
		}
	case KeyHome:
		f.Cursor = 0
	case KeyEnd:
		f.Cursor = len(f.Value)
	default:
		return false
	}
	f.clampScroll()
	return true
}

func (f *TextField) clampScroll() {
	if f.Width <= 0 {
		f.scroll = 0
		return
	}
	if f.Cursor < f.scroll {
		f.scroll = f.Cursor
	}
	if f.Cursor > f.scroll+f.Width-1 {
		f.scroll = f.Cursor - f.Width + 1
	}
	if f.scroll < 0 {
		f.scroll = 0
	}
}

// Draw paints the field: its visible window of text padded to the field
// width, in reverse video when focused.
func (f *TextField) Draw(s *Screen) {
	style := StyleUnderline
	if f.Focused {
		style = StyleReverse
	}
	if f.ReadOnly {
		style |= StyleDim
	}
	visible := f.Value
	if f.scroll < len(visible) {
		visible = visible[f.scroll:]
	} else {
		visible = ""
	}
	if len(visible) > f.Width {
		visible = visible[:f.Width]
	}
	padded := visible + strings.Repeat(" ", f.Width-len(visible))
	s.DrawText(f.Row, f.Col, padded, style)
	if f.Focused {
		cursorCol := f.Col + f.Cursor - f.scroll
		if cursorCol >= f.Col && cursorCol < f.Col+f.Width {
			cell := s.CellAt(f.Row, cursorCol)
			s.SetCell(f.Row, cursorCol, cell.Ch, StyleReverse|StyleBold|StyleUnderline)
		}
	}
}

// GridColumn describes one column of a TableGrid.
type GridColumn struct {
	Title string
	Width int
}

// RowProvider supplies a TableGrid's rows on demand, by absolute row index.
// The grid never materialises the data set: it asks for exactly the rows in
// its visible window, so a provider backed by a paging cursor can sit under a
// grid over a million-row relation and only ever surface a page.
type RowProvider interface {
	// GridRowCount returns the number of rows in the data set, or -1 when it
	// is not (yet) known — a provider still streaming an open-ended cursor.
	GridRowCount() int
	// GridRow returns the cell texts of row i. ok is false when the row does
	// not exist or is not currently available; the grid paints it blank.
	GridRow(i int) (cells []string, ok bool)
}

// StringRows adapts a materialised slice of rows to the RowProvider
// interface, for grids over small in-memory data sets.
type StringRows [][]string

// GridRowCount returns the slice length.
func (r StringRows) GridRowCount() int { return len(r) }

// GridRow returns row i of the slice.
func (r StringRows) GridRow(i int) ([]string, bool) {
	if i < 0 || i >= len(r) {
		return nil, false
	}
	return r[i], true
}

// TableGrid renders rows of text in columns with a heading, a selection bar
// and vertical scrolling: the widget behind browse windows and detail blocks.
// Rows come from a RowProvider — the grid shows a window of VisibleRows rows
// starting at Offset and never asks the provider for anything outside it.
type TableGrid struct {
	Row, Col int
	Columns  []GridColumn
	// Source provides the rows. Use SetRows (or StringRows) for a
	// materialised data set, or any paging RowProvider for a large one.
	Source      RowProvider
	VisibleRows int
	Offset      int
	Selected    int
	Focused     bool
}

// SetRows points the grid at a materialised data set.
func (g *TableGrid) SetRows(rows [][]string) { g.Source = StringRows(rows) }

// rowCount returns the provider's row count (0 with no provider; -1 when the
// provider does not know).
func (g *TableGrid) rowCount() int {
	if g.Source == nil {
		return 0
	}
	return g.Source.GridRowCount()
}

// ClampSelection keeps the selection and scroll offset within the data. The
// row count is read once and both Selected and Offset are clamped against the
// same value, so a data set shrinking between keystrokes (rows deleted while
// the selection sat past the new end) cannot leave the offset pointing past
// the data.
func (g *TableGrid) ClampSelection() {
	count := g.rowCount()
	if g.VisibleRows <= 0 {
		g.VisibleRows = 1
	}
	if count >= 0 && g.Selected >= count {
		g.Selected = count - 1
	}
	if g.Selected < 0 {
		g.Selected = 0
	}
	if g.Selected < g.Offset {
		g.Offset = g.Selected
	}
	if g.Selected >= g.Offset+g.VisibleRows {
		g.Offset = g.Selected - g.VisibleRows + 1
	}
	if count >= 0 && g.Offset > count-g.VisibleRows {
		// Don't scroll a mostly-empty window past the end of the data.
		g.Offset = count - g.VisibleRows
	}
	if g.Offset < 0 {
		g.Offset = 0
	}
}

// HandleKey moves the selection; it reports whether the key was consumed.
// When the provider does not know the total row count, End advances by one
// page instead of jumping (the provider has no end to jump to yet).
func (g *TableGrid) HandleKey(e Event) bool {
	switch e.Key {
	case KeyUp:
		g.Selected--
	case KeyDown:
		g.Selected++
	case KeyPgUp:
		g.Selected -= g.VisibleRows
	case KeyPgDn:
		g.Selected += g.VisibleRows
	case KeyHome:
		g.Selected = 0
	case KeyEnd:
		if count := g.rowCount(); count >= 0 {
			g.Selected = count - 1
		} else {
			g.Selected += g.VisibleRows
		}
	default:
		return false
	}
	g.ClampSelection()
	return true
}

// Draw paints the heading and the visible window of rows, asking the provider
// only for rows inside the window.
func (g *TableGrid) Draw(s *Screen) {
	g.ClampSelection()
	col := g.Col
	for _, c := range g.Columns {
		s.DrawText(g.Row, col, pad(c.Title, c.Width), StyleBold|StyleUnderline)
		col += c.Width + 1
	}
	for i := 0; i < g.VisibleRows; i++ {
		rowIdx := g.Offset + i
		screenRow := g.Row + 1 + i
		style := StyleNone
		if rowIdx == g.Selected && g.Focused {
			style = StyleReverse
		}
		var cells []string
		if g.Source != nil {
			cells, _ = g.Source.GridRow(rowIdx)
		}
		col = g.Col
		for c := range g.Columns {
			text := ""
			if c < len(cells) {
				text = cells[c]
			}
			s.DrawText(screenRow, col, pad(text, g.Columns[c].Width), style)
			col += g.Columns[c].Width + 1
		}
	}
}

// StatusBar is the single message line at the bottom of a form window.
type StatusBar struct {
	Row   int
	Width int
	Text  string
	Error bool
}

// Draw paints the status line across its width.
func (b StatusBar) Draw(s *Screen) {
	style := StyleDim
	if b.Error {
		style = StyleReverse | StyleBold
	}
	s.DrawText(b.Row, 0, pad(b.Text, b.Width), style)
}

// pad truncates or right-pads text to exactly width characters.
func pad(text string, width int) string {
	if width <= 0 {
		return ""
	}
	if len(text) > width {
		return text[:width]
	}
	return text + strings.Repeat(" ", width-len(text))
}
