package tui

import (
	"fmt"
	"strings"
)

// Key identifies a non-character key, or KeyRune for printable input.
type Key int

// Keys the forms runtime responds to.
const (
	KeyRune Key = iota
	KeyEnter
	KeyTab
	KeyBackTab
	KeyEsc
	KeyBackspace
	KeyDelete
	KeyUp
	KeyDown
	KeyLeft
	KeyRight
	KeyPgUp
	KeyPgDn
	KeyHome
	KeyEnd
	// Function keys carry the classic forms-system bindings:
	// F1 help, F2 query mode, F3 clear field, F4 execute query, F5 insert,
	// F6 save/commit, F7 delete row, F8 next window, F9 previous window,
	// F10 quit/close window.
	KeyF1
	KeyF2
	KeyF3
	KeyF4
	KeyF5
	KeyF6
	KeyF7
	KeyF8
	KeyF9
	KeyF10
)

var keyNames = map[Key]string{
	KeyRune: "RUNE", KeyEnter: "ENTER", KeyTab: "TAB", KeyBackTab: "BACKTAB",
	KeyEsc: "ESC", KeyBackspace: "BACKSPACE", KeyDelete: "DELETE",
	KeyUp: "UP", KeyDown: "DOWN", KeyLeft: "LEFT", KeyRight: "RIGHT",
	KeyPgUp: "PGUP", KeyPgDn: "PGDN", KeyHome: "HOME", KeyEnd: "END",
	KeyF1: "F1", KeyF2: "F2", KeyF3: "F3", KeyF4: "F4", KeyF5: "F5",
	KeyF6: "F6", KeyF7: "F7", KeyF8: "F8", KeyF9: "F9", KeyF10: "F10",
}

// String returns the key's script name (the form "<ENTER>" uses in scripts).
func (k Key) String() string {
	if name, ok := keyNames[k]; ok {
		return name
	}
	return fmt.Sprintf("Key(%d)", int(k))
}

// Event is one keystroke.
type Event struct {
	Key  Key
	Rune rune // valid when Key == KeyRune
}

// String renders the event in script notation.
func (e Event) String() string {
	if e.Key == KeyRune {
		return string(e.Rune)
	}
	return "<" + e.Key.String() + ">"
}

// Rune returns a printable-character event.
func RuneEvent(r rune) Event { return Event{Key: KeyRune, Rune: r} }

// KeyEvent returns a special-key event.
func KeyEvent(k Key) Event { return Event{Key: k} }

// TypeString converts a string into the events produced by typing it.
func TypeString(s string) []Event {
	out := make([]Event, 0, len(s))
	for _, r := range s {
		out = append(out, RuneEvent(r))
	}
	return out
}

// ParseScript parses keystroke-script notation into events. Plain characters
// are typed as themselves; special keys are written in angle brackets, e.g.
//
//	"Amalgamated<TAB>Boston<ENTER><F6>"
//
// An unknown key name is an error. "<<" produces a literal '<'.
func ParseScript(script string) ([]Event, error) {
	var out []Event
	i := 0
	for i < len(script) {
		c := script[i]
		if c != '<' {
			out = append(out, RuneEvent(rune(c)))
			i++
			continue
		}
		if i+1 < len(script) && script[i+1] == '<' {
			out = append(out, RuneEvent('<'))
			i += 2
			continue
		}
		end := strings.IndexByte(script[i:], '>')
		if end < 0 {
			return nil, fmt.Errorf("tui: unterminated key name at offset %d", i)
		}
		name := strings.ToUpper(script[i+1 : i+end])
		found := false
		for key, keyName := range keyNames {
			if keyName == name && key != KeyRune {
				out = append(out, KeyEvent(key))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("tui: unknown key <%s>", name)
		}
		i += end + 1
	}
	return out, nil
}

// Script renders events back into script notation; ParseScript(Script(ev))
// round-trips.
func Script(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		if e.Key == KeyRune && e.Rune == '<' {
			b.WriteString("<<")
			continue
		}
		b.WriteString(e.String())
	}
	return b.String()
}
