package exec

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/types"
)

// scanOperator reads a base table sequentially or through an index,
// filtering row versions through the runtime's snapshot and applying the
// residual filter. Indexes hold an entry per version, so both paths decide
// visibility per record id at fetch time; a record id that no longer
// resolves is a version some aborting transaction physically removed after
// the index was read, and is skipped.
type scanOperator struct {
	node   *plan.ScanNode
	filter *expr.Compiled
	params *expr.Params
	rt     *Runtime

	// Sequential scan state.
	iter *catalog.TableVersionIterator
	// Index scan state: the record ids to fetch, in order.
	rids []storage.RecordID
	pos  int
}

func newScanOperator(n *plan.ScanNode, params *expr.Params, rt *Runtime) (*scanOperator, error) {
	op := &scanOperator{node: n, params: params, rt: rt}
	if n.Filter != nil {
		compiled, err := expr.CompileWithParams(n.Filter, n.Schema(), params)
		if err != nil {
			return nil, fmt.Errorf("exec: scan filter: %w", err)
		}
		op.filter = compiled
	}
	return op, nil
}

func (o *scanOperator) Schema() *types.Schema { return o.node.Schema() }

func (o *scanOperator) Open() error {
	o.pos = 0
	o.rids = nil
	o.iter = nil
	switch o.node.Access {
	case plan.AccessSeqScan:
		o.iter = o.node.Table.VersionIterator()
	case plan.AccessIndexEq:
		v, err := o.resolveKey(o.node.EqValue, o.node.EqParam)
		if err != nil {
			return err
		}
		// SQL comparison with NULL is never true, and the planner already
		// consumed this conjunct, so a NULL key must yield an empty scan
		// (EncodeKey(NULL) would instead read real entries).
		if v.IsNull() {
			return nil
		}
		key := types.EncodeKey(nil, v)
		o.rids = o.node.Index.Tree.Search(key)
	case plan.AccessIndexRange:
		low, high, nullBound, err := o.rangeKeys(o.node.Low, o.node.High)
		if err != nil {
			return err
		}
		if nullBound {
			return nil // a NULL bound can never be satisfied: empty scan
		}
		o.rids = o.node.Index.Tree.Range(low, high)
	default:
		return fmt.Errorf("exec: unknown access kind %v", o.node.Access)
	}
	if o.node.Reverse {
		// A reverse scan walks the index access path backwards: the rid list
		// is already in key order, so flipping it yields descending order
		// without a sort (the planner's sort elision relies on this).
		slices.Reverse(o.rids)
	}
	return nil
}

// resolveKey turns an index-key operand into its concrete value: the literal
// as planned, or the bound parameter's current value coerced toward the index
// column's kind so key encoding matches the stored entries.
func (o *scanOperator) resolveKey(v types.Value, param int) (types.Value, error) {
	if param >= 0 {
		bound, err := o.params.Value(param)
		if err != nil {
			return types.Null(), fmt.Errorf("exec: index key: %w", err)
		}
		v = bound
	}
	return o.node.Table.Schema().CoerceToColumn(v, o.node.Index.Columns[0]), nil
}

// rangeKeys converts plan bounds into the byte-key interval [low, high) the
// B+tree scans. For a single-value key the only encoding equal to
// EncodeKey(v) is v's own, so appending a zero byte moves a bound just past
// all entries equal to v. nullBound reports that a bound resolved to NULL,
// which no row can satisfy.
func (o *scanOperator) rangeKeys(low, high *plan.Bound) (lowKey, highKey []byte, nullBound bool, err error) {
	if low != nil {
		v, err := o.resolveKey(low.Value, low.Param)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return nil, nil, true, nil
		}
		lowKey = types.EncodeKey(nil, v)
		if !low.Inclusive {
			lowKey = append(lowKey, 0x00)
		}
	}
	if high != nil {
		v, err := o.resolveKey(high.Value, high.Param)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return nil, nil, true, nil
		}
		highKey = types.EncodeKey(nil, v)
		if high.Inclusive {
			highKey = append(highKey, 0x00)
		}
	}
	return lowKey, highKey, false, nil
}

func (o *scanOperator) Close() error { return nil }

func (o *scanOperator) Next() (types.Tuple, bool, error) {
	_, tuple, ok, err := o.nextRow()
	return tuple, ok, err
}

// nextRow yields the next visible matching row together with its record id
// (the write operators pull target rids through it; Next discards them).
func (o *scanOperator) nextRow() (storage.RecordID, types.Tuple, bool, error) {
	for {
		var rid storage.RecordID
		var tuple types.Tuple
		if o.iter != nil {
			r, meta, t, ok, err := o.iter.Next()
			if err != nil {
				return storage.RecordID{}, nil, false, err
			}
			if !ok {
				return storage.RecordID{}, nil, false, nil
			}
			if !o.rt.visible(meta) {
				continue
			}
			rid, tuple = r, t
		} else {
			if o.pos >= len(o.rids) {
				return storage.RecordID{}, nil, false, nil
			}
			rid = o.rids[o.pos]
			o.pos++
			meta, t, err := o.node.Table.GetVersion(rid)
			if err != nil {
				// A version an aborting transaction removed (or the vacuum
				// reclaimed) after the index read: skip it.
				if errors.Is(err, storage.ErrRecordNotFound) {
					continue
				}
				return storage.RecordID{}, nil, false, fmt.Errorf("exec: fetching row %v of %s: %w", rid, o.node.Table.Name(), err)
			}
			if !o.rt.visible(meta) {
				continue
			}
			tuple = t
		}
		if o.filter != nil {
			ok, err := o.filter.EvalBool(tuple)
			if err != nil {
				return storage.RecordID{}, nil, false, err
			}
			if !ok {
				continue
			}
		}
		return rid, tuple, true, nil
	}
}

// filterOperator applies a predicate above an arbitrary input.
type filterOperator struct {
	input Operator
	cond  *expr.Compiled
}

func newFilterOperator(n *plan.FilterNode, params *expr.Params, rt *Runtime) (*filterOperator, error) {
	input, err := BuildWithRuntime(n.Input, params, rt)
	if err != nil {
		return nil, err
	}
	cond, err := expr.CompileWithParams(n.Cond, input.Schema(), params)
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	return &filterOperator{input: input, cond: cond}, nil
}

func (o *filterOperator) Schema() *types.Schema { return o.input.Schema() }
func (o *filterOperator) Open() error           { return o.input.Open() }
func (o *filterOperator) Close() error          { return o.input.Close() }

func (o *filterOperator) Next() (types.Tuple, bool, error) {
	for {
		tuple, ok, err := o.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := o.cond.EvalBool(tuple)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return tuple, true, nil
		}
	}
}

// projectOperator computes the SELECT list.
type projectOperator struct {
	input  Operator
	exprs  []*expr.Compiled
	schema *types.Schema
}

func newProjectOperator(n *plan.ProjectNode, params *expr.Params, rt *Runtime) (*projectOperator, error) {
	input, err := BuildWithRuntime(n.Input, params, rt)
	if err != nil {
		return nil, err
	}
	op := &projectOperator{input: input, schema: n.Schema()}
	for _, item := range n.Items {
		c, err := expr.CompileWithParams(item.Expr, input.Schema(), params)
		if err != nil {
			return nil, fmt.Errorf("exec: projection %s: %w", item.Name, err)
		}
		op.exprs = append(op.exprs, c)
	}
	return op, nil
}

func (o *projectOperator) Schema() *types.Schema { return o.schema }
func (o *projectOperator) Open() error           { return o.input.Open() }
func (o *projectOperator) Close() error          { return o.input.Close() }

func (o *projectOperator) Next() (types.Tuple, bool, error) {
	tuple, ok, err := o.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(types.Tuple, len(o.exprs))
	for i, e := range o.exprs {
		v, err := e.Eval(tuple)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}
