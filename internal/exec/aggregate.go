package exec

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// aggregateOperator implements hash aggregation: it drains its input,
// partitions rows by the group-by key and folds each group through the
// aggregate functions.
type aggregateOperator struct {
	node    *plan.AggregateNode
	input   Operator
	groupBy []*expr.Compiled
	args    []*expr.Compiled // nil entry for COUNT(*)
	schema  *types.Schema

	groups []types.Tuple
	pos    int
}

func newAggregateOperator(n *plan.AggregateNode, params *expr.Params, rt *Runtime) (*aggregateOperator, error) {
	input, err := BuildWithRuntime(n.Input, params, rt)
	if err != nil {
		return nil, err
	}
	op := &aggregateOperator{node: n, input: input, schema: n.Schema()}
	for _, g := range n.GroupBy {
		c, err := expr.CompileWithParams(g.Expr, input.Schema(), params)
		if err != nil {
			return nil, fmt.Errorf("exec: GROUP BY %s: %w", g.Name, err)
		}
		op.groupBy = append(op.groupBy, c)
	}
	for _, a := range n.Aggs {
		if a.Arg == nil {
			op.args = append(op.args, nil)
			continue
		}
		c, err := expr.CompileWithParams(a.Arg, input.Schema(), params)
		if err != nil {
			return nil, fmt.Errorf("exec: aggregate %s: %w", a.Name, err)
		}
		op.args = append(op.args, c)
	}
	return op, nil
}

func (o *aggregateOperator) Schema() *types.Schema { return o.schema }
func (o *aggregateOperator) Close() error          { return o.input.Close() }

// aggState folds one aggregate over one group.
type aggState struct {
	fn      plan.AggFunc
	count   int64
	sum     float64
	sumInt  int64
	allInts bool
	min     types.Value
	max     types.Value
	seen    bool
}

func newAggState(fn plan.AggFunc) *aggState {
	return &aggState{fn: fn, allInts: true}
}

func (s *aggState) add(v types.Value) error {
	if s.fn == plan.AggCountStar {
		s.count++
		return nil
	}
	if v.IsNull() {
		return nil // SQL aggregates ignore NULL inputs
	}
	s.count++
	switch s.fn {
	case plan.AggCount:
		// count of non-null values; nothing else to fold
	case plan.AggSum, plan.AggAvg:
		switch v.Kind() {
		case types.KindInt:
			s.sumInt += v.Int()
			s.sum += float64(v.Int())
		case types.KindFloat:
			s.allInts = false
			s.sum += v.Float()
		default:
			return fmt.Errorf("exec: cannot sum %s values", v.Kind())
		}
	case plan.AggMin, plan.AggMax:
		if !s.seen {
			s.min, s.max, s.seen = v, v, true
			return nil
		}
		cmpMin, err := v.Compare(s.min)
		if err != nil {
			return err
		}
		if cmpMin < 0 {
			s.min = v
		}
		cmpMax, err := v.Compare(s.max)
		if err != nil {
			return err
		}
		if cmpMax > 0 {
			s.max = v
		}
	}
	return nil
}

func (s *aggState) result() types.Value {
	switch s.fn {
	case plan.AggCount, plan.AggCountStar:
		return types.NewInt(s.count)
	case plan.AggSum:
		if s.count == 0 {
			return types.Null()
		}
		if s.allInts {
			return types.NewInt(s.sumInt)
		}
		return types.NewFloat(s.sum)
	case plan.AggAvg:
		if s.count == 0 {
			return types.Null()
		}
		return types.NewFloat(s.sum / float64(s.count))
	case plan.AggMin:
		if !s.seen {
			return types.Null()
		}
		return s.min
	case plan.AggMax:
		if !s.seen {
			return types.Null()
		}
		return s.max
	default:
		return types.Null()
	}
}

func (o *aggregateOperator) Open() error {
	o.groups = nil
	o.pos = 0
	if err := o.input.Open(); err != nil {
		return err
	}
	type group struct {
		key    types.Tuple
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string
	anyRow := false
	for {
		row, ok, err := o.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		anyRow = true
		key := make(types.Tuple, len(o.groupBy))
		for i, g := range o.groupBy {
			v, err := g.Eval(row)
			if err != nil {
				return err
			}
			key[i] = v
		}
		fingerprint := string(types.EncodeTuple(nil, key))
		grp, okGrp := groups[fingerprint]
		if !okGrp {
			grp = &group{key: key}
			for _, a := range o.node.Aggs {
				grp.states = append(grp.states, newAggState(a.Func))
			}
			groups[fingerprint] = grp
			order = append(order, fingerprint)
		}
		for i, a := range o.args {
			var v types.Value
			if a != nil {
				val, err := a.Eval(row)
				if err != nil {
					return err
				}
				v = val
			}
			if err := grp.states[i].add(v); err != nil {
				return err
			}
		}
	}
	// A global aggregate (no GROUP BY) over an empty input still produces
	// one row (COUNT(*) = 0, SUM = NULL, ...).
	if !anyRow && len(o.groupBy) == 0 {
		var states []*aggState
		for _, a := range o.node.Aggs {
			states = append(states, newAggState(a.Func))
		}
		row := make(types.Tuple, 0, len(states))
		for _, s := range states {
			row = append(row, s.result())
		}
		o.groups = append(o.groups, row)
		return nil
	}
	sort.Strings(order)
	for _, fingerprint := range order {
		grp := groups[fingerprint]
		row := make(types.Tuple, 0, len(grp.key)+len(grp.states))
		row = append(row, grp.key...)
		for _, s := range grp.states {
			row = append(row, s.result())
		}
		o.groups = append(o.groups, row)
	}
	return nil
}

func (o *aggregateOperator) Next() (types.Tuple, bool, error) {
	if o.pos >= len(o.groups) {
		return nil, false, nil
	}
	row := o.groups[o.pos]
	o.pos++
	return row, true, nil
}

// sortOperator materialises its input and sorts it by the compiled keys.
type sortOperator struct {
	node  *plan.SortNode
	input Operator
	keys  []*expr.Compiled
	descs []bool

	rows []types.Tuple
	pos  int
}

func newSortOperator(n *plan.SortNode, params *expr.Params, rt *Runtime) (*sortOperator, error) {
	input, err := BuildWithRuntime(n.Input, params, rt)
	if err != nil {
		return nil, err
	}
	op := &sortOperator{node: n, input: input}
	for _, k := range n.Keys {
		c, err := expr.CompileWithParams(k.Expr, input.Schema(), params)
		if err != nil {
			return nil, fmt.Errorf("exec: ORDER BY %s: %w", k.Expr.String(), err)
		}
		op.keys = append(op.keys, c)
		op.descs = append(op.descs, k.Desc)
	}
	return op, nil
}

func (o *sortOperator) Schema() *types.Schema { return o.input.Schema() }
func (o *sortOperator) Close() error          { return o.input.Close() }

func (o *sortOperator) Open() error {
	o.rows = nil
	o.pos = 0
	if err := o.input.Open(); err != nil {
		return err
	}
	type keyedRow struct {
		row  types.Tuple
		keys types.Tuple
	}
	var rows []keyedRow
	for {
		row, ok, err := o.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		keys := make(types.Tuple, len(o.keys))
		for i, k := range o.keys {
			v, err := k.Eval(row)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		rows = append(rows, keyedRow{row: row, keys: keys})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range o.keys {
			cmp, err := rows[i].keys[k].Compare(rows[j].keys[k])
			if err != nil {
				cmp = 0
			}
			if cmp == 0 {
				continue
			}
			if o.descs[k] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	o.rows = make([]types.Tuple, len(rows))
	for i, r := range rows {
		o.rows[i] = r.row
	}
	return nil
}

func (o *sortOperator) Next() (types.Tuple, bool, error) {
	if o.pos >= len(o.rows) {
		return nil, false, nil
	}
	row := o.rows[o.pos]
	o.pos++
	return row, true, nil
}

// Compile-time assertions that every operator satisfies Operator.
var (
	_ Operator = (*scanOperator)(nil)
	_ Operator = (*filterOperator)(nil)
	_ Operator = (*projectOperator)(nil)
	_ Operator = (*joinOperator)(nil)
	_ Operator = (*aggregateOperator)(nil)
	_ Operator = (*sortOperator)(nil)
	_ Operator = (*distinctOperator)(nil)
	_ Operator = (*limitOperator)(nil)
	_ Operator = (*derivedOperator)(nil)
)
