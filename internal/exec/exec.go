// Package exec runs plan trees. Each plan node maps to a pull-style operator
// (Open / Next / Close); Build compiles the expressions once and wires the
// operators together, and Run drains the tree into a result set.
package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// Runtime carries the per-execution state an operator tree cannot bake in at
// build time: the MVCC snapshot scans filter row versions through. A prepared
// statement builds its operator tree once and re-points the runtime at a
// fresh snapshot on every open, the way it rebinds its parameter frame.
type Runtime struct {
	snap *txn.Snapshot
}

// NewRuntime returns a runtime with no snapshot.
func NewRuntime() *Runtime { return &Runtime{} }

// SetSnapshot points the runtime at the snapshot the next execution reads
// under. A nil snapshot reads the latest live versions (xmax==0), which is
// what direct exec callers outside any transaction scope get.
func (r *Runtime) SetSnapshot(s *txn.Snapshot) { r.snap = s }

// visible applies the runtime's visibility policy to one version header.
func (r *Runtime) visible(meta storage.VersionMeta) bool {
	if r == nil || r.snap == nil {
		return meta.Xmax == 0
	}
	return r.snap.Visible(meta)
}

// Operator is a pull-style iterator over tuples.
type Operator interface {
	// Schema describes the tuples the operator produces.
	Schema() *types.Schema
	// Open prepares the operator (and its inputs) for iteration.
	Open() error
	// Next returns the next tuple; ok is false when the input is exhausted.
	Next() (tuple types.Tuple, ok bool, err error)
	// Close releases any resources. It is safe to call after an error.
	Close() error
}

// Build compiles a plan tree into an operator tree with no bind parameters.
func Build(node plan.Node) (Operator, error) {
	return BuildWithRuntime(node, nil, NewRuntime())
}

// BuildWithParams compiles a plan tree into an operator tree whose parameter
// placeholders read from the given bind frame, with a fresh (snapshot-free)
// runtime. The operator tree is reusable: rebind the frame and Open it again
// to re-run the query without re-parsing, re-planning or re-compiling any
// expression.
func BuildWithParams(node plan.Node, params *expr.Params) (Operator, error) {
	return BuildWithRuntime(node, params, NewRuntime())
}

// BuildWithRuntime compiles a plan tree into an operator tree whose scans
// read through rt's snapshot. The caller keeps rt and re-points it at a new
// snapshot per execution.
func BuildWithRuntime(node plan.Node, params *expr.Params, rt *Runtime) (Operator, error) {
	switch n := node.(type) {
	case *plan.ScanNode:
		return newScanOperator(n, params, rt)
	case *plan.DerivedNode:
		input, err := BuildWithRuntime(n.Input, params, rt)
		if err != nil {
			return nil, err
		}
		return &derivedOperator{input: input, schema: n.Schema()}, nil
	case *plan.FilterNode:
		return newFilterOperator(n, params, rt)
	case *plan.JoinNode:
		return newJoinOperator(n, params, rt)
	case *plan.ProjectNode:
		return newProjectOperator(n, params, rt)
	case *plan.AggregateNode:
		return newAggregateOperator(n, params, rt)
	case *plan.SortNode:
		return newSortOperator(n, params, rt)
	case *plan.DistinctNode:
		input, err := BuildWithRuntime(n.Input, params, rt)
		if err != nil {
			return nil, err
		}
		return &distinctOperator{input: input}, nil
	case *plan.LimitNode:
		input, err := BuildWithRuntime(n.Input, params, rt)
		if err != nil {
			return nil, err
		}
		return &limitOperator{input: input, limit: n.Limit, offset: n.Offset}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", node)
	}
}

// Result is a fully materialised query result.
type Result struct {
	Schema *types.Schema
	Rows   []types.Tuple
}

// Run builds, opens, drains and closes the plan in one call, reading the
// latest live versions (no snapshot).
func Run(node plan.Node) (*Result, error) {
	return RunWithRuntime(node, NewRuntime())
}

// RunWithRuntime builds, opens, drains and closes the plan in one call,
// reading through rt's snapshot.
func RunWithRuntime(node plan.Node, rt *Runtime) (res *Result, err error) {
	op, err := BuildWithRuntime(node, nil, rt)
	if err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := op.Close(); cerr != nil && err == nil {
			res, err = nil, cerr
		}
	}()
	res = &Result{Schema: op.Schema()}
	for {
		tuple, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
		res.Rows = append(res.Rows, tuple)
	}
}

// derivedOperator renames its input's columns (a view used as a table); the
// tuples pass through unchanged.
type derivedOperator struct {
	input  Operator
	schema *types.Schema
}

func (o *derivedOperator) Schema() *types.Schema { return o.schema }
func (o *derivedOperator) Open() error           { return o.input.Open() }
func (o *derivedOperator) Close() error          { return o.input.Close() }
func (o *derivedOperator) Next() (types.Tuple, bool, error) {
	return o.input.Next()
}

// limitOperator applies OFFSET and LIMIT.
type limitOperator struct {
	input   Operator
	limit   int64
	offset  int64
	skipped int64
	emitted int64
}

func (o *limitOperator) Schema() *types.Schema { return o.input.Schema() }
func (o *limitOperator) Open() error {
	o.skipped, o.emitted = 0, 0
	return o.input.Open()
}
func (o *limitOperator) Close() error { return o.input.Close() }

func (o *limitOperator) Next() (types.Tuple, bool, error) {
	for {
		if o.limit >= 0 && o.emitted >= o.limit {
			return nil, false, nil
		}
		tuple, ok, err := o.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if o.skipped < o.offset {
			o.skipped++
			continue
		}
		o.emitted++
		return tuple, true, nil
	}
}

// distinctOperator drops tuples it has already emitted, keyed by the tuple's
// storage encoding.
type distinctOperator struct {
	input Operator
	seen  map[string]bool
}

func (o *distinctOperator) Schema() *types.Schema { return o.input.Schema() }
func (o *distinctOperator) Open() error {
	o.seen = make(map[string]bool)
	return o.input.Open()
}
func (o *distinctOperator) Close() error { return o.input.Close() }

func (o *distinctOperator) Next() (types.Tuple, bool, error) {
	for {
		tuple, ok, err := o.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := string(types.EncodeTuple(nil, tuple))
		if o.seen[key] {
			continue
		}
		o.seen[key] = true
		return tuple, true, nil
	}
}
