// Write operators: the execution half of planned DML. BuildWrite compiles an
// Insert/Update/Delete plan node into a reusable operator — expressions are
// compiled once against the bind frame, so a prepared write rebinds and runs
// again without touching the planner — and Run applies the write inside a
// transaction supplied by the caller.
package exec

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/view"
)

// WriteOperator executes one DML plan. Like the read operator tree it is
// reusable: rebind the frame it was built with and Run it again.
type WriteOperator interface {
	// Table returns the base table the write targets.
	Table() *catalog.Table
	// Run applies the write inside t and returns the affected row count.
	// The target scan reads through t's snapshot (first-updater-wins: a
	// visible version another transaction superseded in the meantime fails
	// the write with txn.ErrWriteConflict when t tries to claim it).
	Run(t *txn.Txn) (int, error)
}

// BuildWrite compiles a DML plan node into a write operator reading
// parameters from the given bind frame.
func BuildWrite(node plan.Node, params *expr.Params) (WriteOperator, error) {
	switch n := node.(type) {
	case *plan.InsertNode:
		return newInsertOperator(n, params)
	case *plan.UpdateNode:
		return newUpdateOperator(n, params)
	case *plan.DeleteNode:
		return newDeleteOperator(n, params)
	default:
		return nil, fmt.Errorf("exec: %T is not a DML plan node", node)
	}
}

// compileCheck compiles the CHECK OPTION predicate of the view a write goes
// through (nil updatable or predicate-free view yields a nil check, which
// accepts every row).
func compileCheck(updatable *view.Updatable, schema *types.Schema) (*view.RowCheck, error) {
	if updatable == nil {
		return nil, nil
	}
	return updatable.CompileCheck(schema)
}

// --- INSERT ------------------------------------------------------------------

// insertOperator evaluates each planned row into a full-width tuple and
// inserts it.
type insertOperator struct {
	node *plan.InsertNode
	// defaults is the tuple template: column defaults where declared, NULL
	// elsewhere. Copied per inserted row.
	defaults types.Tuple
	// rows holds the compiled value expressions, parallel to node.Rows.
	rows  [][]*expr.Compiled
	check *view.RowCheck
}

func newInsertOperator(n *plan.InsertNode, params *expr.Params) (*insertOperator, error) {
	schema := n.Table.Schema()
	op := &insertOperator{node: n, defaults: make(types.Tuple, schema.Len())}
	for i, col := range schema.Columns {
		if col.Default != nil {
			op.defaults[i] = *col.Default
		} else {
			op.defaults[i] = types.Null()
		}
	}
	// Value expressions are row-free: compiling against an empty schema makes
	// any column reference a prepare-time error.
	empty := types.NewSchema()
	for _, row := range n.Rows {
		compiled := make([]*expr.Compiled, len(row))
		for i, e := range row {
			c, err := expr.CompileWithParams(e, empty, params)
			if err != nil {
				return nil, fmt.Errorf("exec: INSERT value: %w", err)
			}
			compiled[i] = c
		}
		op.rows = append(op.rows, compiled)
	}
	check, err := compileCheck(n.Check, schema)
	if err != nil {
		return nil, err
	}
	op.check = check
	return op, nil
}

func (o *insertOperator) Table() *catalog.Table { return o.node.Table }

func (o *insertOperator) Run(t *txn.Txn) (int, error) {
	affected := 0
	for _, row := range o.rows {
		tuple := o.defaults.Clone()
		for i, c := range row {
			v, err := c.Eval(nil)
			if err != nil {
				return affected, err
			}
			if o.node.ColumnPos != nil {
				tuple[o.node.ColumnPos[i]] = v
			} else {
				tuple[i] = v
			}
		}
		if err := o.check.Check(tuple); err != nil {
			return affected, err
		}
		if _, err := t.Insert(o.node.Table, tuple); err != nil {
			return affected, err
		}
		affected++
	}
	return affected, nil
}

// --- UPDATE / DELETE ---------------------------------------------------------

// target is one row a write will touch, captured before mutation starts so
// the scan never observes its own writes.
type target struct {
	rid   storage.RecordID
	tuple types.Tuple
}

// collectTargets points the write's runtime at t's snapshot and drains the
// child scan into the target list: the write touches exactly the rows its
// transaction can see, and never observes its own writes. No table lock is
// taken — each target is claimed row-by-row when the mutation runs.
// withTuples retains each row's decoded tuple (updates evaluate assignments
// against the pre-update image); deletes pass false so a wide DELETE buffers
// only record ids, not the whole affected row set.
func collectTargets(t *txn.Txn, scan *scanOperator, withTuples bool) (out []target, err error) {
	scan.rt.SetSnapshot(t.Snapshot())
	if err := scan.Open(); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := scan.Close(); cerr != nil && err == nil {
			out, err = nil, cerr
		}
	}()
	for {
		rid, tuple, ok, err := scan.nextRow()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if !withTuples {
			tuple = nil
		}
		out = append(out, target{rid: rid, tuple: tuple})
	}
}

// updateOperator rewrites the rows its child scan yields.
type updateOperator struct {
	node *plan.UpdateNode
	scan *scanOperator
	// sets pairs each assignment's schema position with its compiled value
	// expression (evaluated against the pre-update row).
	sets []struct {
		pos   int
		value *expr.Compiled
	}
	check *view.RowCheck
}

func newUpdateOperator(n *plan.UpdateNode, params *expr.Params) (*updateOperator, error) {
	scanNode, ok := n.Input.(*plan.ScanNode)
	if !ok {
		return nil, fmt.Errorf("exec: UPDATE expects a scan child, got %T", n.Input)
	}
	scan, err := newScanOperator(scanNode, params, NewRuntime())
	if err != nil {
		return nil, err
	}
	op := &updateOperator{node: n, scan: scan}
	for _, s := range n.Sets {
		c, err := expr.CompileWithParams(s.Expr, scan.Schema(), params)
		if err != nil {
			return nil, fmt.Errorf("exec: SET %s: %w", s.Column, err)
		}
		op.sets = append(op.sets, struct {
			pos   int
			value *expr.Compiled
		}{pos: s.Pos, value: c})
	}
	check, err := compileCheck(n.Check, n.Table.Schema())
	if err != nil {
		return nil, err
	}
	op.check = check
	return op, nil
}

func (o *updateOperator) Table() *catalog.Table { return o.node.Table }

func (o *updateOperator) Run(t *txn.Txn) (int, error) {
	targets, err := collectTargets(t, o.scan, true)
	if err != nil {
		return 0, err
	}
	affected := 0
	for _, target := range targets {
		next := target.tuple.Clone()
		for _, s := range o.sets {
			v, err := s.value.Eval(target.tuple)
			if err != nil {
				return affected, err
			}
			next[s.pos] = v
		}
		if err := o.check.Check(next); err != nil {
			return affected, err
		}
		if _, err := t.Update(o.node.Table, target.rid, next); err != nil {
			return affected, err
		}
		affected++
	}
	return affected, nil
}

// deleteOperator removes the rows its child scan yields.
type deleteOperator struct {
	node *plan.DeleteNode
	scan *scanOperator
}

func newDeleteOperator(n *plan.DeleteNode, params *expr.Params) (*deleteOperator, error) {
	scanNode, ok := n.Input.(*plan.ScanNode)
	if !ok {
		return nil, fmt.Errorf("exec: DELETE expects a scan child, got %T", n.Input)
	}
	scan, err := newScanOperator(scanNode, params, NewRuntime())
	if err != nil {
		return nil, err
	}
	return &deleteOperator{node: n, scan: scan}, nil
}

func (o *deleteOperator) Table() *catalog.Table { return o.node.Table }

func (o *deleteOperator) Run(t *txn.Txn) (int, error) {
	targets, err := collectTargets(t, o.scan, false)
	if err != nil {
		return 0, err
	}
	affected := 0
	for _, target := range targets {
		if err := t.Delete(o.node.Table, target.rid); err != nil {
			return affected, err
		}
		affected++
	}
	return affected, nil
}
