// Write operators: the execution half of planned DML. BuildWrite compiles an
// Insert/Update/Delete plan node into a reusable operator — expressions are
// compiled once against the bind frame, so a prepared write rebinds and runs
// again without touching the planner — and Run applies the write inside a
// transaction supplied by the caller.
package exec

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/view"
)

// WriteOperator executes one DML plan. Like the read operator tree it is
// reusable: rebind the frame it was built with and Run it again.
type WriteOperator interface {
	// Table returns the base table the write targets.
	Table() *catalog.Table
	// Returning describes the rows Run streams back for the statement's
	// RETURNING clause — nil when the statement has none (the common case),
	// in which case Run's row slice is always nil.
	Returning() *types.Schema
	// Run applies the write inside t and returns the affected row count plus
	// the RETURNING projection of every affected row (nil without the
	// clause). The target scan reads through t's snapshot
	// (first-updater-wins: a visible version another transaction superseded
	// in the meantime fails the write with txn.ErrWriteConflict when t tries
	// to claim it).
	Run(t *txn.Txn) (int, []types.Tuple, error)
}

// BuildWrite compiles a DML plan node into a write operator reading
// parameters from the given bind frame.
func BuildWrite(node plan.Node, params *expr.Params) (WriteOperator, error) {
	switch n := node.(type) {
	case *plan.InsertNode:
		return newInsertOperator(n, params)
	case *plan.UpdateNode:
		return newUpdateOperator(n, params)
	case *plan.DeleteNode:
		return newDeleteOperator(n, params)
	default:
		return nil, fmt.Errorf("exec: %T is not a DML plan node", node)
	}
}

// compileCheck compiles the CHECK OPTION predicate of the view a write goes
// through (nil updatable or predicate-free view yields a nil check, which
// accepts every row).
func compileCheck(updatable *view.Updatable, schema *types.Schema) (*view.RowCheck, error) {
	if updatable == nil {
		return nil, nil
	}
	return updatable.CompileCheck(schema)
}

// --- RETURNING ---------------------------------------------------------------

// returningEval is a compiled RETURNING clause: projection expressions
// evaluated against one affected row (the inserted tuple, the post-update
// image, or the deleted row's last visible version).
type returningEval struct {
	schema *types.Schema
	exprs  []*expr.Compiled
}

// compileReturning compiles the planned clause against the base table's row
// schema (qualified by the same lowercased-table alias the planner resolved
// names under). Nil plan yields a nil eval, which projects nothing.
func compileReturning(r *plan.Returning, table *catalog.Table, params *expr.Params) (*returningEval, error) {
	if r == nil {
		return nil, nil
	}
	rowSchema := table.Schema().WithTable(strings.ToLower(table.Name()))
	out := &returningEval{schema: r.Schema, exprs: make([]*expr.Compiled, len(r.Exprs))}
	for i, e := range r.Exprs {
		c, err := expr.CompileWithParams(e, rowSchema, params)
		if err != nil {
			return nil, fmt.Errorf("exec: RETURNING %s: %w", r.Names[i], err)
		}
		out.exprs[i] = c
	}
	return out, nil
}

// Schema reports the projected row shape (nil receiver → nil schema).
func (r *returningEval) Schema() *types.Schema {
	if r == nil {
		return nil
	}
	return r.schema
}

// project appends the clause's projection of row to rows. A nil receiver
// passes rows through untouched, so callers need not branch on the clause's
// presence.
func (r *returningEval) project(rows []types.Tuple, row types.Tuple) ([]types.Tuple, error) {
	if r == nil {
		return rows, nil
	}
	out := make(types.Tuple, len(r.exprs))
	for i, c := range r.exprs {
		v, err := c.Eval(row)
		if err != nil {
			return rows, err
		}
		out[i] = v
	}
	return append(rows, out), nil
}

// --- INSERT ------------------------------------------------------------------

// insertOperator evaluates each planned row into a full-width tuple and
// inserts it. For INSERT ... SELECT the rows come from a child query operator
// instead of compiled VALUES expressions.
type insertOperator struct {
	node *plan.InsertNode
	// defaults is the tuple template: column defaults where declared, NULL
	// elsewhere. Copied per inserted row.
	defaults types.Tuple
	// rows holds the compiled value expressions, parallel to node.Rows
	// (empty for the SELECT form).
	rows [][]*expr.Compiled
	// sel is the child query feeding the insert (nil for the VALUES form).
	// selRt is its runtime, pointed at the write transaction's snapshot per
	// Run.
	sel   Operator
	selRt *Runtime
	check *view.RowCheck
	ret   *returningEval
}

func newInsertOperator(n *plan.InsertNode, params *expr.Params) (*insertOperator, error) {
	schema := n.Table.Schema()
	op := &insertOperator{node: n, defaults: make(types.Tuple, schema.Len())}
	for i, col := range schema.Columns {
		if col.Default != nil {
			op.defaults[i] = *col.Default
		} else {
			op.defaults[i] = types.Null()
		}
	}
	if n.Select != nil {
		op.selRt = NewRuntime()
		sel, err := BuildWithRuntime(n.Select, params, op.selRt)
		if err != nil {
			return nil, fmt.Errorf("exec: INSERT ... SELECT: %w", err)
		}
		op.sel = sel
	}
	// Value expressions are row-free: compiling against an empty schema makes
	// any column reference a prepare-time error.
	empty := types.NewSchema()
	for _, row := range n.Rows {
		compiled := make([]*expr.Compiled, len(row))
		for i, e := range row {
			c, err := expr.CompileWithParams(e, empty, params)
			if err != nil {
				return nil, fmt.Errorf("exec: INSERT value: %w", err)
			}
			compiled[i] = c
		}
		op.rows = append(op.rows, compiled)
	}
	check, err := compileCheck(n.Check, schema)
	if err != nil {
		return nil, err
	}
	op.check = check
	if op.ret, err = compileReturning(n.Returning, n.Table, params); err != nil {
		return nil, err
	}
	return op, nil
}

func (o *insertOperator) Table() *catalog.Table    { return o.node.Table }
func (o *insertOperator) Returning() *types.Schema { return o.ret.Schema() }

// sourceRows materializes every value row for this Run: VALUES expressions
// evaluated, or the child SELECT drained through t's snapshot. The SELECT is
// drained completely before any insert happens, so the feeding query never
// observes the rows it is inserting (same discipline as collectTargets).
func (o *insertOperator) sourceRows(t *txn.Txn) ([]types.Tuple, error) {
	if o.sel == nil {
		out := make([]types.Tuple, 0, len(o.rows))
		for _, row := range o.rows {
			vals := make(types.Tuple, len(row))
			for i, c := range row {
				v, err := c.Eval(nil)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			out = append(out, vals)
		}
		return out, nil
	}
	o.selRt.SetSnapshot(t.Snapshot())
	if err := o.sel.Open(); err != nil {
		return nil, err
	}
	var out []types.Tuple
	for {
		row, ok, err := o.sel.Next()
		if err != nil {
			return nil, errors.Join(err, o.sel.Close())
		}
		if !ok {
			break
		}
		out = append(out, row.Clone())
	}
	if err := o.sel.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

func (o *insertOperator) Run(t *txn.Txn) (affected int, returned []types.Tuple, err error) {
	source, err := o.sourceRows(t)
	if err != nil {
		return 0, nil, err
	}
	schema := o.node.Table.Schema()
	for _, vals := range source {
		tuple := o.defaults.Clone()
		for i, v := range vals {
			pos := i
			if o.node.ColumnPos != nil {
				pos = o.node.ColumnPos[i]
			}
			// SELECT-fed values carry whatever kind the query produced;
			// coerce best-effort toward the column's declared type (exact
			// mismatches surface through constraint checks, as with binds).
			tuple[pos] = schema.CoerceToColumn(v, schema.Columns[pos].Name)
		}
		if err := o.check.Check(tuple); err != nil {
			return affected, returned, err
		}
		if _, err := t.Insert(o.node.Table, tuple); err != nil {
			return affected, returned, err
		}
		if returned, err = o.ret.project(returned, tuple); err != nil {
			return affected, returned, err
		}
		affected++
	}
	return affected, returned, nil
}

// --- UPDATE / DELETE ---------------------------------------------------------

// target is one row a write will touch, captured before mutation starts so
// the scan never observes its own writes.
type target struct {
	rid   storage.RecordID
	tuple types.Tuple
}

// collectTargets points the write's runtime at t's snapshot and drains the
// child scan into the target list: the write touches exactly the rows its
// transaction can see, and never observes its own writes. No table lock is
// taken — each target is claimed row-by-row when the mutation runs.
// withTuples retains each row's decoded tuple (updates evaluate assignments
// against the pre-update image); deletes pass false so a wide DELETE buffers
// only record ids, not the whole affected row set.
func collectTargets(t *txn.Txn, scan *scanOperator, withTuples bool) (out []target, err error) {
	scan.rt.SetSnapshot(t.Snapshot())
	if err := scan.Open(); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := scan.Close(); cerr != nil && err == nil {
			out, err = nil, cerr
		}
	}()
	for {
		rid, tuple, ok, err := scan.nextRow()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if !withTuples {
			tuple = nil
		}
		out = append(out, target{rid: rid, tuple: tuple})
	}
}

// updateOperator rewrites the rows its child scan yields.
type updateOperator struct {
	node *plan.UpdateNode
	scan *scanOperator
	// sets pairs each assignment's schema position with its compiled value
	// expression (evaluated against the pre-update row).
	sets []struct {
		pos   int
		value *expr.Compiled
	}
	check *view.RowCheck
	ret   *returningEval
}

func newUpdateOperator(n *plan.UpdateNode, params *expr.Params) (*updateOperator, error) {
	scanNode, ok := n.Input.(*plan.ScanNode)
	if !ok {
		return nil, fmt.Errorf("exec: UPDATE expects a scan child, got %T", n.Input)
	}
	scan, err := newScanOperator(scanNode, params, NewRuntime())
	if err != nil {
		return nil, err
	}
	op := &updateOperator{node: n, scan: scan}
	for _, s := range n.Sets {
		c, err := expr.CompileWithParams(s.Expr, scan.Schema(), params)
		if err != nil {
			return nil, fmt.Errorf("exec: SET %s: %w", s.Column, err)
		}
		op.sets = append(op.sets, struct {
			pos   int
			value *expr.Compiled
		}{pos: s.Pos, value: c})
	}
	check, err := compileCheck(n.Check, n.Table.Schema())
	if err != nil {
		return nil, err
	}
	op.check = check
	if op.ret, err = compileReturning(n.Returning, n.Table, params); err != nil {
		return nil, err
	}
	return op, nil
}

func (o *updateOperator) Table() *catalog.Table    { return o.node.Table }
func (o *updateOperator) Returning() *types.Schema { return o.ret.Schema() }

func (o *updateOperator) Run(t *txn.Txn) (affected int, returned []types.Tuple, err error) {
	targets, err := collectTargets(t, o.scan, true)
	if err != nil {
		return 0, nil, err
	}
	for _, target := range targets {
		next := target.tuple.Clone()
		for _, s := range o.sets {
			v, err := s.value.Eval(target.tuple)
			if err != nil {
				return affected, returned, err
			}
			next[s.pos] = v
		}
		if err := o.check.Check(next); err != nil {
			return affected, returned, err
		}
		if _, err := t.Update(o.node.Table, target.rid, next); err != nil {
			return affected, returned, err
		}
		// RETURNING sees the post-update image.
		if returned, err = o.ret.project(returned, next); err != nil {
			return affected, returned, err
		}
		affected++
	}
	return affected, returned, nil
}

// deleteOperator removes the rows its child scan yields.
type deleteOperator struct {
	node *plan.DeleteNode
	scan *scanOperator
	ret  *returningEval
}

func newDeleteOperator(n *plan.DeleteNode, params *expr.Params) (*deleteOperator, error) {
	scanNode, ok := n.Input.(*plan.ScanNode)
	if !ok {
		return nil, fmt.Errorf("exec: DELETE expects a scan child, got %T", n.Input)
	}
	scan, err := newScanOperator(scanNode, params, NewRuntime())
	if err != nil {
		return nil, err
	}
	op := &deleteOperator{node: n, scan: scan}
	if op.ret, err = compileReturning(n.Returning, n.Table, params); err != nil {
		return nil, err
	}
	return op, nil
}

func (o *deleteOperator) Table() *catalog.Table    { return o.node.Table }
func (o *deleteOperator) Returning() *types.Schema { return o.ret.Schema() }

func (o *deleteOperator) Run(t *txn.Txn) (affected int, returned []types.Tuple, err error) {
	// RETURNING projects each deleted row's last visible version, so the
	// scan must retain tuples; without the clause only record ids are kept.
	targets, err := collectTargets(t, o.scan, o.ret != nil)
	if err != nil {
		return 0, nil, err
	}
	for _, target := range targets {
		if err := t.Delete(o.node.Table, target.rid); err != nil {
			return affected, returned, err
		}
		if returned, err = o.ret.project(returned, target.tuple); err != nil {
			return affected, returned, err
		}
		affected++
	}
	return affected, returned, nil
}
