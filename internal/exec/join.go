package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// joinOperator implements nested-loop and hash joins (inner and left outer).
// The right input is always materialised; interactive form queries join small
// detail sets against indexed masters, so right-side materialisation is cheap.
type joinOperator struct {
	node        *plan.JoinNode
	left, right Operator
	schema      *types.Schema

	on       *expr.Compiled // full condition (nested loop), compiled on joined schema
	residual *expr.Compiled // extra condition after hash match
	eqLeft   *expr.Compiled // hash key over left schema
	eqRight  *expr.Compiled // hash key over right schema

	rightRows  []types.Tuple
	hashTable  map[uint64][]types.Tuple
	current    types.Tuple // current left tuple
	matches    []types.Tuple
	matchPos   int
	matchedAny bool
	leftDone   bool
}

func newJoinOperator(n *plan.JoinNode, params *expr.Params, rt *Runtime) (*joinOperator, error) {
	left, err := BuildWithRuntime(n.Left, params, rt)
	if err != nil {
		return nil, err
	}
	right, err := BuildWithRuntime(n.Right, params, rt)
	if err != nil {
		return nil, err
	}
	op := &joinOperator{node: n, left: left, right: right, schema: n.Schema()}
	if n.Strategy == plan.JoinHash {
		if op.eqLeft, err = expr.CompileWithParams(n.EqLeft, left.Schema(), params); err != nil {
			return nil, fmt.Errorf("exec: hash join left key: %w", err)
		}
		if op.eqRight, err = expr.CompileWithParams(n.EqRight, right.Schema(), params); err != nil {
			return nil, fmt.Errorf("exec: hash join right key: %w", err)
		}
		if n.Residual != nil {
			if op.residual, err = expr.CompileWithParams(n.Residual, n.Schema(), params); err != nil {
				return nil, fmt.Errorf("exec: hash join residual: %w", err)
			}
		}
	} else if n.On != nil {
		if op.on, err = expr.CompileWithParams(n.On, n.Schema(), params); err != nil {
			return nil, fmt.Errorf("exec: join condition: %w", err)
		}
	}
	return op, nil
}

func (o *joinOperator) Schema() *types.Schema { return o.schema }

func (o *joinOperator) Open() error {
	o.current = nil
	o.matches = nil
	o.matchPos = 0
	o.leftDone = false
	o.rightRows = nil
	o.hashTable = nil
	if err := o.left.Open(); err != nil {
		return err
	}
	if err := o.right.Open(); err != nil {
		return err
	}
	// Materialise the right input once.
	for {
		tuple, ok, err := o.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		o.rightRows = append(o.rightRows, tuple)
	}
	if o.node.Strategy == plan.JoinHash {
		o.hashTable = make(map[uint64][]types.Tuple, len(o.rightRows))
		for _, row := range o.rightRows {
			key, err := o.eqRight.Eval(row)
			if err != nil {
				return err
			}
			if key.IsNull() {
				continue // NULL never equi-joins
			}
			h := key.Hash()
			o.hashTable[h] = append(o.hashTable[h], row)
		}
	}
	return nil
}

func (o *joinOperator) Close() error {
	errL := o.left.Close()
	errR := o.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

func (o *joinOperator) Next() (types.Tuple, bool, error) {
	for {
		// Emit pending matches for the current left row.
		if o.current != nil && o.matchPos < len(o.matches) {
			rightRow := o.matches[o.matchPos]
			o.matchPos++
			joined := o.current.Concat(rightRow)
			pass, err := o.checkJoined(joined)
			if err != nil {
				return nil, false, err
			}
			if !pass {
				continue
			}
			o.matchedAny = true
			return joined, true, nil
		}
		// Finished the current left row: left-outer padding if it never matched.
		if o.current != nil {
			needPad := o.node.Outer && !o.matchedAny
			leftRow := o.current
			o.current = nil
			if needPad {
				pad := make(types.Tuple, len(o.schema.Columns)-len(leftRow))
				for i := range pad {
					pad[i] = types.Null()
				}
				return leftRow.Concat(pad), true, nil
			}
			continue
		}
		if o.leftDone {
			return nil, false, nil
		}
		// Advance to the next left row and compute its candidate matches.
		leftRow, ok, err := o.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			o.leftDone = true
			continue
		}
		o.current = leftRow
		o.matchedAny = false
		o.matchPos = 0
		if o.node.Strategy == plan.JoinHash {
			key, err := o.eqLeft.Eval(leftRow)
			if err != nil {
				return nil, false, err
			}
			if key.IsNull() {
				o.matches = nil
			} else {
				o.matches = o.hashTable[key.Hash()]
			}
		} else {
			o.matches = o.rightRows
		}
	}
}

// checkJoined applies whichever condition remains for the joined row: the
// full ON condition for nested-loop joins, hash-key equality plus residual
// for hash joins (hash buckets may contain collisions).
func (o *joinOperator) checkJoined(joined types.Tuple) (bool, error) {
	if o.node.Strategy == plan.JoinHash {
		leftKey, err := o.eqLeft.Eval(joined[:len(o.left.Schema().Columns)])
		if err != nil {
			return false, err
		}
		rightKey, err := o.eqRight.Eval(joined[len(o.left.Schema().Columns):])
		if err != nil {
			return false, err
		}
		if leftKey.IsNull() || rightKey.IsNull() || !leftKey.Equal(rightKey) {
			return false, nil
		}
		if o.residual != nil {
			return o.residual.EvalBool(joined)
		}
		return true, nil
	}
	if o.on != nil {
		return o.on.EvalBool(joined)
	}
	return true, nil // cross join
}
