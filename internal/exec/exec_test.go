package exec

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// setup creates customers (6 rows) and orders (8 rows) with indexes, plus a
// "rich" view, and returns the catalog.
func setup(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewMemDiskManager(), 512))
	customers, err := cat.CreateTable("customers", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt, PrimaryKey: true},
		types.Column{Name: "name", Type: types.KindString, NotNull: true},
		types.Column{Name: "city", Type: types.KindString},
		types.Column{Name: "credit", Type: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	orders, err := cat.CreateTable("orders", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt, PrimaryKey: true},
		types.Column{Name: "customer_id", Type: types.KindInt, NotNull: true},
		types.Column{Name: "total", Type: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("customers_city", "customers", []string{"city"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex("orders_customer", "orders", []string{"customer_id"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateView("rich", "SELECT id, name, credit FROM customers WHERE credit >= 1000", nil); err != nil {
		t.Fatal(err)
	}

	custRows := []struct {
		id     int64
		name   string
		city   string
		credit float64
	}{
		{1, "Ada", "Boston", 1500},
		{2, "Bob", "Boston", 200},
		{3, "Cyd", "Chicago", 3000},
		{4, "Dee", "Denver", 50},
		{5, "Eli", "Chicago", 1000},
		{6, "Fay", "Boston", 700},
	}
	for _, r := range custRows {
		if _, err := customers.Insert(catalog.Tuple{
			types.NewInt(r.id), types.NewString(r.name), types.NewString(r.city), types.NewFloat(r.credit),
		}); err != nil {
			t.Fatal(err)
		}
	}
	orderRows := []struct {
		id, cust int64
		total    float64
	}{
		{100, 1, 250}, {101, 1, 80}, {102, 2, 40},
		{103, 3, 900}, {104, 3, 100}, {105, 3, 60},
		{106, 5, 500}, {107, 9, 10}, // order 107 references a missing customer
	}
	for _, r := range orderRows {
		if _, err := orders.Insert(catalog.Tuple{
			types.NewInt(r.id), types.NewInt(r.cust), types.NewFloat(r.total),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func query(t testing.TB, cat *catalog.Catalog, q string) *Result {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	node, err := plan.NewBuilder(cat).Build(sel)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	res, err := Run(node)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return res
}

func TestSelectAll(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT * FROM customers")
	if len(res.Rows) != 6 || res.Schema.Len() != 4 {
		t.Errorf("rows=%d cols=%d", len(res.Rows), res.Schema.Len())
	}
}

func TestWhereFilterSeqScan(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT name FROM customers WHERE credit > 800")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestIndexEqualityLookup(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT name FROM customers WHERE id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Cyd" {
		t.Errorf("rows = %v", res.Rows)
	}
	res2 := query(t, cat, "SELECT name FROM customers WHERE city = 'Boston'")
	if len(res2.Rows) != 3 {
		t.Errorf("Boston rows = %v", res2.Rows)
	}
}

func TestIndexRangeScan(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT id FROM customers WHERE id > 2 AND id <= 5")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Results from an index range scan come back in key order.
	for i, want := range []int64{3, 4, 5} {
		if res.Rows[i][0].Int() != want {
			t.Errorf("row %d = %v", i, res.Rows[i])
		}
	}
	res2 := query(t, cat, "SELECT id FROM customers WHERE id BETWEEN 2 AND 4")
	if len(res2.Rows) != 3 {
		t.Errorf("BETWEEN rows = %v", res2.Rows)
	}
}

func TestProjectionExpressions(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT name, credit * 2 AS doubled, UPPER(city) FROM customers WHERE id = 1")
	row := res.Rows[0]
	if row[0].Str() != "Ada" || row[1].Float() != 3000 || row[2].Str() != "BOSTON" {
		t.Errorf("row = %v", row)
	}
	if res.Schema.Columns[1].Name != "doubled" {
		t.Errorf("schema = %v", res.Schema)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT name FROM customers ORDER BY credit DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "Cyd" || res.Rows[1][0].Str() != "Ada" {
		t.Errorf("rows = %v", res.Rows)
	}
	res2 := query(t, cat, "SELECT name FROM customers ORDER BY credit DESC LIMIT 2 OFFSET 2")
	if len(res2.Rows) != 2 || res2.Rows[0][0].Str() != "Eli" {
		t.Errorf("offset rows = %v", res2.Rows)
	}
	res3 := query(t, cat, "SELECT name FROM customers ORDER BY city ASC, credit DESC")
	if res3.Rows[0][0].Str() != "Ada" || res3.Rows[1][0].Str() != "Fay" {
		t.Errorf("multi-key sort = %v", res3.Rows)
	}
}

func TestDistinct(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT DISTINCT city FROM customers")
	if len(res.Rows) != 3 {
		t.Errorf("distinct cities = %v", res.Rows)
	}
}

func TestInnerJoinHash(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, `SELECT c.name, o.total FROM customers c JOIN orders o ON o.customer_id = c.id ORDER BY o.total DESC`)
	if len(res.Rows) != 7 { // order 107 has no matching customer
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "Cyd" || res.Rows[0][1].Float() != 900 {
		t.Errorf("first row = %v", res.Rows[0])
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, `SELECT c.name, o.id FROM customers c LEFT JOIN orders o ON o.customer_id = c.id ORDER BY c.id`)
	// 7 matched rows + 2 customers with no orders (Dee, Fay) = 9.
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
	nullCount := 0
	for _, row := range res.Rows {
		if row[1].IsNull() {
			nullCount++
		}
	}
	if nullCount != 2 {
		t.Errorf("unmatched rows = %d, want 2", nullCount)
	}
}

func TestCrossJoinWithWhere(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT c.name, o.id FROM customers c, orders o WHERE c.id = o.customer_id AND o.total > 400")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestNonEquiJoin(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT c.name, o.id FROM customers c JOIN orders o ON o.total > c.credit")
	// Each pair where order total exceeds customer credit.
	if len(res.Rows) == 0 {
		t.Fatal("expected some rows")
	}
	for _, row := range res.Rows {
		if row[0].IsNull() {
			t.Errorf("unexpected null row %v", row)
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT city, COUNT(*), SUM(credit), AVG(credit), MIN(credit), MAX(credit) FROM customers GROUP BY city ORDER BY city")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	boston := res.Rows[0]
	if boston[0].Str() != "Boston" || boston[1].Int() != 3 || boston[2].Float() != 2400 || boston[3].Float() != 800 {
		t.Errorf("Boston group = %v", boston)
	}
	if boston[4].Float() != 200 || boston[5].Float() != 1500 {
		t.Errorf("Boston min/max = %v", boston)
	}
}

func TestHavingFilter(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT city, COUNT(*) FROM customers GROUP BY city HAVING COUNT(*) >= 2 ORDER BY city")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "Boston" || res.Rows[1][0].Str() != "Chicago" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT COUNT(*), SUM(credit) FROM customers WHERE id > 1000")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", res.Rows[0])
	}
}

func TestCountDistinctionBetweenStarAndColumn(t *testing.T) {
	cat := setup(t)
	customers, _ := cat.GetTable("customers")
	if _, err := customers.Insert(catalog.Tuple{types.NewInt(7), types.NewString("Gus"), types.Null(), types.Null()}); err != nil {
		t.Fatal(err)
	}
	res := query(t, cat, "SELECT COUNT(*), COUNT(city) FROM customers")
	if res.Rows[0][0].Int() != 7 || res.Rows[0][1].Int() != 6 {
		t.Errorf("COUNT(*) vs COUNT(city) = %v", res.Rows[0])
	}
}

func TestAggregateOverJoin(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, `SELECT c.name, COUNT(*), SUM(o.total)
		FROM customers c JOIN orders o ON o.customer_id = c.id
		GROUP BY c.name ORDER BY SUM(o.total) DESC`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "Cyd" || res.Rows[0][2].Float() != 1060 {
		t.Errorf("top spender = %v", res.Rows[0])
	}
}

func TestViewQuery(t *testing.T) {
	cat := setup(t)
	res := query(t, cat, "SELECT name FROM rich ORDER BY credit DESC")
	if len(res.Rows) != 3 {
		t.Fatalf("rich rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "Cyd" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Querying a view with an extra predicate composes both filters.
	res2 := query(t, cat, "SELECT name FROM rich WHERE credit < 2000")
	if len(res2.Rows) != 2 {
		t.Errorf("filtered view rows = %v", res2.Rows)
	}
}

func TestDeletedRowSkippedInIndexScan(t *testing.T) {
	cat := setup(t)
	customers, _ := cat.GetTable("customers")
	// Find and delete Bob through the table API after planning would already
	// have chosen an index path; the executor must tolerate missing rids.
	var bobRID storage.RecordID
	_ = customers.Scan(func(rid storage.RecordID, tuple catalog.Tuple) error {
		if tuple[1].Str() == "Bob" {
			bobRID = rid
		}
		return nil
	})
	if err := customers.Delete(bobRID); err != nil {
		t.Fatal(err)
	}
	res := query(t, cat, "SELECT name FROM customers WHERE city = 'Boston'")
	if len(res.Rows) != 2 {
		t.Errorf("rows after delete = %v", res.Rows)
	}
}

func TestIsNullAndInPredicates(t *testing.T) {
	cat := setup(t)
	customers, _ := cat.GetTable("customers")
	if _, err := customers.Insert(catalog.Tuple{types.NewInt(7), types.NewString("Gus"), types.Null(), types.Null()}); err != nil {
		t.Fatal(err)
	}
	if got := query(t, cat, "SELECT name FROM customers WHERE city IS NULL"); len(got.Rows) != 1 || got.Rows[0][0].Str() != "Gus" {
		t.Errorf("IS NULL rows = %v", got.Rows)
	}
	if got := query(t, cat, "SELECT name FROM customers WHERE city IN ('Denver', 'Chicago') ORDER BY name"); len(got.Rows) != 3 {
		t.Errorf("IN rows = %v", got.Rows)
	}
	if got := query(t, cat, "SELECT name FROM customers WHERE name LIKE '%a%'"); len(got.Rows) != 2 {
		t.Errorf("LIKE rows = %v", got.Rows)
	}
}

func TestOperatorReopen(t *testing.T) {
	cat := setup(t)
	sel, _ := sql.ParseSelect("SELECT name FROM customers WHERE credit > 500 ORDER BY name")
	node, err := plan.NewBuilder(cat).Build(sel)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Build(node)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := op.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != 4 {
			t.Errorf("round %d saw %d rows", round, n)
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunErrorsOnBadExpression(t *testing.T) {
	cat := setup(t)
	sel, _ := sql.ParseSelect("SELECT name FROM customers WHERE credit + name > 2")
	node, err := plan.NewBuilder(cat).Build(sel)
	if err != nil {
		return // the planner may reject it, which is fine
	}
	if _, err := Run(node); err == nil {
		t.Error("adding a string to a float should fail at runtime")
	}
}

func BenchmarkSeqScanFilter10k(b *testing.B) {
	cat := benchCatalog(b, 10000)
	sel, _ := sql.ParseSelect("SELECT name FROM customers WHERE credit > 9900")
	node, err := plan.NewBuilder(cat).Build(sel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(node); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLookup10k(b *testing.B) {
	cat := benchCatalog(b, 10000)
	sel, _ := sql.ParseSelect("SELECT name FROM customers WHERE id = 5000")
	node, err := plan.NewBuilder(cat).Build(sel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(node); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	cat := benchCatalog(b, 2000)
	sel, _ := sql.ParseSelect("SELECT c.name, o.total FROM customers c JOIN orders o ON o.customer_id = c.id")
	node, err := plan.NewBuilder(cat).Build(sel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(node); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCatalog(b *testing.B, n int) *catalog.Catalog {
	b.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewMemDiskManager(), 4096))
	customers, _ := cat.CreateTable("customers", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt, PrimaryKey: true},
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "credit", Type: types.KindFloat},
	))
	orders, _ := cat.CreateTable("orders", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt, PrimaryKey: true},
		types.Column{Name: "customer_id", Type: types.KindInt},
		types.Column{Name: "total", Type: types.KindFloat},
	))
	for i := 0; i < n; i++ {
		if _, err := customers.Insert(catalog.Tuple{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("cust-%d", i)), types.NewFloat(float64(i))}); err != nil {
			b.Fatal(err)
		}
		if _, err := orders.Insert(catalog.Tuple{types.NewInt(int64(i)), types.NewInt(int64(i % (n / 2))), types.NewFloat(float64(i) / 3)}); err != nil {
			b.Fatal(err)
		}
	}
	return cat
}
