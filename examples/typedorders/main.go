// Typed orders: the sqlair typed client API end to end — structs with
// db-tagged fields move in and out of SQL that names them directly, a write
// and its read collapse into one RETURNING statement, and INSERT ... SELECT
// copies rows without them ever crossing into the client.
//
// Run locally (in-memory engine):  go run ./examples/typedorders
// Run against a live wowserver:    go run ./examples/typedorders -connect host:port
// The same statements run either way; only the DB constructor differs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/server/client"
	"repro/internal/sqlair"
)

// Order is the application's shape for a row of the orders table. The db
// tags are the only mapping: no Scan calls, no positional argument lists.
type Order struct {
	ID       int     `db:"id"`
	Customer string  `db:"customer"`
	Total    float64 `db:"total"`
	Shipped  bool    `db:"shipped"`
}

// Threshold carries query parameters; inputs are structs too.
type Threshold struct {
	Min float64 `db:"min"`
}

const schema = `CREATE TABLE orders (
	id INT PRIMARY KEY,
	customer TEXT NOT NULL,
	total FLOAT DEFAULT 0,
	shipped BOOL DEFAULT FALSE
)`

const archiveSchema = `CREATE TABLE archive (
	id INT PRIMARY KEY,
	customer TEXT,
	total FLOAT
)`

func main() {
	connect := flag.String("connect", "", "wowserver address; default runs an in-memory engine")
	flag.Parse()
	ctx := context.Background()

	var db *sqlair.DB
	var exec func(string) error
	if *connect == "" {
		edb := engine.OpenMemory()
		defer edb.Close()
		session := edb.Session()
		db = sqlair.NewSessionDB(session)
		exec = func(ddl string) error { _, err := session.Execute(ddl); return err }
	} else {
		pool := client.NewPool(*connect, client.PoolConfig{Size: 2})
		defer pool.Close()
		db = sqlair.NewPoolDB(pool)
		exec = func(ddl string) error {
			return pool.With(func(h *client.PooledConn) error { _, err := h.Exec(ddl); return err })
		}
	}
	for _, ddl := range []string{schema, archiveSchema} {
		if err := exec(ddl); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Typed inserts. RETURNING &Order.* sends the stored row back in the
	// same round trip, defaults filled in — no follow-up SELECT.
	insert := sqlair.MustPrepare(
		"INSERT INTO orders (id, customer, total) VALUES ($Order.id, $Order.customer, $Order.total) RETURNING &Order.*",
		Order{})
	for _, o := range []Order{
		{ID: 1, Customer: "Amalgamated Widget", Total: 1200.50},
		{ID: 2, Customer: "Eastern Gadget", Total: 340},
		{ID: 3, Customer: "Amalgamated Widget", Total: 88.25},
	} {
		var stored Order
		if err := db.Query(ctx, insert, o).Get(&stored); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stored order %d for %s: total %.2f shipped=%v\n",
			stored.ID, stored.Customer, stored.Total, stored.Shipped)
	}

	// 2. A typed update-and-read: ship every big order, and see exactly what
	// changed without a second query.
	ship, err := db.Prepare(
		"UPDATE orders SET shipped = TRUE WHERE total >= $Threshold.min RETURNING &Order.id, &Order.total",
		Order{}, Threshold{})
	if err != nil {
		log.Fatal(err)
	}
	iter, err := db.Query(ctx, ship, Threshold{Min: 300}).Iter()
	if err != nil {
		log.Fatal(err)
	}
	for iter.Next() {
		var o Order
		if err := iter.Get(&o); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shipped order %d (%.2f)\n", o.ID, o.Total)
	}
	if err := iter.Close(); err != nil {
		log.Fatal(err)
	}

	// 3. INSERT ... SELECT: archive shipped orders server-side. The rows are
	// copied inside the engine; the client sees only the RETURNING ids.
	archive := sqlair.MustPrepare(
		"INSERT INTO archive (id, customer, total) SELECT id, customer, total FROM orders WHERE shipped RETURNING &Order.id",
		Order{})
	archived, err := db.Query(ctx, archive).Iter()
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for archived.Next() {
		var o Order
		if err := archived.Get(&o); err != nil {
			log.Fatal(err)
		}
		count++
	}
	if err := archived.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d shipped order(s)\n", count)

	// 4. Typed reads with a struct parameter.
	big := sqlair.MustPrepare(
		"SELECT &Order.* FROM orders WHERE total >= $Threshold.min ORDER BY total DESC",
		Order{}, Threshold{})
	rows, err := db.Query(ctx, big, Threshold{Min: 100}).Iter()
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var o Order
		if err := rows.Get(&o); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("order %d: %-20s %8.2f shipped=%v\n", o.ID, o.Customer, o.Total, o.Shipped)
	}
	if err := rows.Close(); err != nil {
		log.Fatal(err)
	}

	stats := db.Stats()
	fmt.Printf("caches: %d statement hit(s), %d type-reflection hit(s)\n", stats.StmtHits, stats.TypeHits)
}
