// Quickstart: create a table, declare a form over it, open a window, insert a
// few rows through the window, and query it by form — the whole public API in
// thirty lines of real use.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
)

const schema = `
CREATE TABLE people (
	id INT PRIMARY KEY,
	name TEXT NOT NULL,
	city TEXT DEFAULT 'Boston',
	phone TEXT
);
`

const form = `
form person_card on people
  title "People"
  key id
  field id    width 6  label "Id"
  field name  width 24 label "Name" required
  field city  width 14 label "City"
  field phone width 12 label "Phone"
  order by name
end
`

func main() {
	// 1. Open an in-memory database and create the schema.
	db := engine.OpenMemory()
	if _, err := db.Session().ExecuteScript(schema); err != nil {
		log.Fatal(err)
	}

	// 2. Compile the form and open a window on it.
	forms, err := core.NewCompiler(db).CompileSource(form)
	if err != nil {
		log.Fatal(err)
	}
	manager := core.NewManager(db, 90, 26)
	window, err := manager.Open(forms[0], 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Insert rows through the window (exactly what a user typing into the
	// form would cause).
	people := []struct{ id, name, city, phone string }{
		{"1", "Ada Lovelace", "London", "555-0100"},
		{"2", "Edgar Codd", "San Jose", "555-0101"},
		{"3", "Grace Hopper", "Arlington", "555-0102"},
	}
	for _, p := range people {
		if err := window.BeginInsert(); err != nil {
			log.Fatal(err)
		}
		must(window.SetFieldText("id", p.id))
		must(window.SetFieldText("name", p.name))
		must(window.SetFieldText("city", p.city))
		must(window.SetFieldText("phone", p.phone))
		if err := window.Save(); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Query by form: fill a pattern into the name field.
	if err := window.Query(map[string]string{"name": "G%"}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query by form 'name: G%%' selected %d row(s)\n\n", window.RowCount())

	// 5. The same lookup through the engine's prepared-statement API: parse
	// and plan once, then bind and stream as often as needed.
	stmt, err := db.Session().Prepare("SELECT name, city FROM people WHERE name LIKE @pat ORDER BY name")
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()
	for _, pattern := range []string{"G%", "%a%"} {
		must(stmt.BindNamed("pat", types.NewString(pattern)))
		rows, err := stmt.Query()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prepared query name LIKE %q:\n", pattern)
		for rows.Next() {
			var name, city string
			must(rows.Scan(&name, &city))
			fmt.Printf("  %s (%s)\n", name, city)
		}
		must(rows.Err())
		rows.Close()
	}
	fmt.Println()

	// 6. Show the window as the user sees it.
	if err := window.Query(nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println(window.Screen().String())
	fmt.Printf("window stats: %+v\n", window.Stats())

	stats := db.Stats()
	fmt.Printf("plan cache: %d hits / %d misses; cursors: %d opened, %d rows streamed\n",
		stats.PlanCacheHits, stats.PlanCacheMisses, stats.CursorsOpened, stats.RowsStreamed)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
