// Order entry: the workload the paper's introduction motivates — a clerk
// keeps a customer card open with that customer's orders in a detail block,
// looks customers up by form, enters orders, and is protected by validation
// rules and triggers. The whole session is driven by keystroke scripts, so
// the example runs unattended and prints what the clerk would see.
//
// Run with: go run ./examples/orderentry
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	// A populated order-processing database (200 customers, 1000 orders).
	db := engine.OpenMemory()
	if err := workload.Populate(db, workload.SmallSizes); err != nil {
		log.Fatal(err)
	}
	forms, err := core.NewCompiler(db).CompileSource(workload.StandardForms)
	if err != nil {
		log.Fatal(err)
	}
	byName := map[string]*core.Form{}
	for _, f := range forms {
		byName[f.Def.Name] = f
	}

	manager := core.NewManager(db, 100, 30)
	card, err := manager.Open(byName["customer_form"], 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Look up the customers of Boston by form and walk to the first one.
	fmt.Println("== customer lookup by form (city = Boston) ==")
	if err := card.HandleScript(workload.CustomerLookupScript("Boston", 0)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d Boston customers; current card:\n\n%s\n", card.RowCount(), card.Screen().String())

	// 2. Enter a new order for the current customer through the order form.
	current, _ := card.CurrentRow()
	customerID := current[0].Int()
	orderWindow, err := manager.Open(byName["order_form"], 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== entering a new order ==")
	if err := orderWindow.HandleScript(workload.OrderEntryScript(90001, int(customerID), "249.99")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("order form status:", orderWindow.Status())

	// The customer card's detail block refreshed automatically (the window
	// manager propagated the orders write).
	manager.Focus(card)
	fmt.Printf("\ncustomer card after the order was entered (detail shows the new order):\n\n%s\n", card.Screen().String())

	// 3. Validation and triggers protect the data: a negative order total is
	// rejected by the form's validation rule before any SQL runs.
	fmt.Println("== validation ==")
	if err := orderWindow.HandleScript(workload.OrderEntryScript(90002, int(customerID), "-5")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("attempt to save a negative total:", orderWindow.Status())

	// 4. Session statistics the experiments build on. Every window refresh
	// above ran through a prepared statement the window holds on to, so after
	// the first refresh of each query shape the plan cache serves the rest.
	fmt.Printf("\ncard window stats:  %+v\n", card.Stats())
	fmt.Printf("order window stats: %+v\n", orderWindow.Stats())
	fmt.Printf("windows refreshed by propagation: %d\n", manager.WindowsRefreshed())
	stats := db.Stats()
	fmt.Printf("engine: %d statements prepared, plan cache %d hits / %d misses, %d rows streamed\n",
		stats.StatementsPrepared, stats.PlanCacheHits, stats.PlanCacheMisses, stats.RowsStreamed)
}
