// Directory: several windows on the same world. A browse window shows the
// customers of one city, a second window shows the "good customers" view, and
// a third is used to change a credit limit. When the change commits, the
// window manager refreshes every window whose contents it affects — the
// behaviour the paper's title describes.
//
// Run with: go run ./examples/directory
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	db := engine.OpenMemory()
	if err := workload.Populate(db, workload.SmallSizes); err != nil {
		log.Fatal(err)
	}
	forms, err := core.NewCompiler(db).CompileSource(workload.StandardForms)
	if err != nil {
		log.Fatal(err)
	}
	byName := map[string]*core.Form{}
	for _, f := range forms {
		byName[f.Def.Name] = f
	}

	manager := core.NewManager(db, 120, 40)

	// Window 1: customers of Boston (query by form).
	boston, err := manager.Open(byName["customer_form"], 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := boston.Query(map[string]string{"city": "Boston"}); err != nil {
		log.Fatal(err)
	}

	// Window 2: the good_customers view (credit >= 500), bound read-write
	// because the view is updatable.
	good, err := manager.Open(byName["good_customer_form"], 0, 40)
	if err != nil {
		log.Fatal(err)
	}

	// Window 3: the card we will edit.
	editor, err := manager.Open(byName["customer_form"], 10, 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("before: %d Boston customers, %d good customers\n", boston.RowCount(), good.RowCount())

	// Find a Boston customer who is not yet a good customer and raise their
	// credit above the view's threshold, through the editor window. The lookup
	// is a prepared parameterized query with a streaming cursor closed after
	// the first row.
	lookup, err := db.Session().Prepare("SELECT id FROM customers WHERE city = @city AND credit < @limit ORDER BY id LIMIT 1")
	if err != nil {
		log.Fatal(err)
	}
	defer lookup.Close()
	rows, err := lookup.Query(types.NewString("Boston"), types.NewFloat(500))
	if err != nil {
		log.Fatal(err)
	}
	if !rows.Next() {
		log.Fatal("no candidate customer found")
	}
	var target int64
	if err := rows.Scan(&target); err != nil {
		log.Fatal(err)
	}
	rows.Close()
	if err := editor.Query(map[string]string{"id": fmt.Sprintf("%d", target)}); err != nil {
		log.Fatal(err)
	}
	manager.Focus(editor)
	if err := editor.HandleScript(workload.CreditChangeScript("2000")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("editor status after saving: %s\n", editor.Status())

	// Both other windows were refreshed by the manager: the customer now
	// appears in the good-customers window without anyone touching it.
	fmt.Printf("after:  %d Boston customers, %d good customers\n", boston.RowCount(), good.RowCount())
	fmt.Printf("windows refreshed by propagation: %d (across %d write notifications)\n\n",
		manager.WindowsRefreshed(), manager.PropagationCount())

	// Show the composite screen with all three windows.
	fmt.Println(manager.Screen().String())
}
