// Command checklinks verifies the intra-repo links in markdown files: every
// relative link target (after stripping any #fragment) must exist on disk,
// resolved against the file that contains it. External links (http, https,
// mailto) and pure-fragment links are skipped, as are code fences. CI runs
// it over README.md and docs/*.md so a moved or renamed file cannot leave
// the documentation silently pointing at nothing.
//
// Usage: go run ./scripts/checklinks README.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline markdown links and images: [text](target).
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checklinks <markdown-file>...")
		os.Exit(2)
	}
	broken := 0
	checked := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checklinks: %v\n", err)
			os.Exit(2)
		}
		inFence := false
		for lineNo, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if isExternal(target) {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue // a pure #fragment link within the same file
				}
				checked++
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (%s does not exist)\n",
						path, lineNo+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "checklinks: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("checklinks: %d intra-repo link(s) ok\n", checked)
}

func isExternal(target string) bool {
	for _, prefix := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, prefix) {
			return true
		}
	}
	return false
}
