// Command wowvet is the repository's domain-specific static-analysis suite:
// four analyzers that prove the engine's lifecycle, locking and wire
// invariants (see docs/ANALYSIS.md).
//
// It runs in two modes:
//
//   - standalone, over the whole module at once (strongest for lockorder,
//     which then sees every package's acquisition graph in one process):
//
//     wowvet ./...
//
//   - as a `go vet` tool, speaking the unitchecker protocol (one compilation
//     unit per process, cross-package state carried in serialized facts):
//
//     go vet -vettool=$(command -v wowvet) ./...
//
// Both modes exit 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 on internal errors. Findings can be suppressed one line
// at a time with `//wowvet:ignore <analyzer> -- <justification>`; a
// suppression without a justification is itself a finding.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/closecheck"
	"repro/internal/analysis/errpropagate"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/wireconform"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		lockorder.Analyzer,
		wireconform.Analyzer,
		errpropagate.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The `go vet -vettool` protocol probes the tool before use:
	// `-V=full` must print a content-addressed version line, `-flags` the
	// tool's extra flags as JSON. Handle both before anything else.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion()
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return 0
		case arg == "-V" || strings.HasPrefix(arg, "-V="):
			fmt.Fprintln(os.Stderr, "wowvet: unsupported flag value: use -V=full")
			return 2
		case arg == "help" || arg == "-h" || arg == "-help" || arg == "--help":
			usage()
			return 0
		}
	}

	// One *.cfg argument: a vet compilation unit.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunUnit(args[0], analyzers(), os.Stderr)
	}

	// Standalone: analyze the module packages matching the patterns.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wowvet:", err)
		return 2
	}
	prog, err := analysis.LoadPackages(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wowvet:", err)
		return 2
	}
	diags, err := analysis.RunPackages(prog, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wowvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion implements the -V=full contract go vet uses to fingerprint
// the tool for its action cache: the executable path and a sha256 of its
// own binary.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wowvet:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wowvet:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "wowvet:", err)
		return 2
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}

func usage() {
	fmt.Println("wowvet proves the repository's lifecycle, locking and wire invariants.")
	fmt.Println()
	fmt.Println("usage:")
	fmt.Println("  wowvet [packages]                      analyze the module (default ./...)")
	fmt.Println("  go vet -vettool=$(command -v wowvet)   run under go vet per compilation unit")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range analyzers() {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppress one finding with a justified comment on or above its line:")
	fmt.Println("  //wowvet:ignore <analyzer> -- <why the invariant holds here>")
}
