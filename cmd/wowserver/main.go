// Command wowserver serves the engine over the wire protocol: a TCP session
// manager in front of one shared database, one goroutine per connection, all
// connections sharing the engine-wide plan cache so concurrent clients
// preparing the same statements compile them once. Connections negotiate
// protocol v2 at connect (Hello/HelloOK); incompatible clients are refused
// with a versioned error.
//
// Usage:
//
//	wowserver [-addr 127.0.0.1:4045] [-data file.db] [-wal file.wal] [-cache 256]
//	          [-metrics 127.0.0.1:4046] [-checkpoint 30s] [-replica-of addr]
//
// With -replica-of, the server runs as a read-only physical replica: it
// subscribes to the primary at addr, streams the primary's WAL from the
// beginning into a fresh in-memory engine, and serves SELECTs against its
// own MVCC snapshots while refusing writes and explicit transactions.
// Replicas take no -data/-wal of their own; a restarted replica simply
// re-streams the full history (checkpoints never truncate the primary's
// log, so LSN 0 is always available).
//
// With -metrics, a side-channel HTTP listener serves the server, engine and
// plan-cache counters as JSON under /metrics (see README for the fields).
// With -checkpoint, a background checkpointer periodically writes a
// snapshot-consistent image of the database into the WAL so a restart
// replays only the log tail after it; at startup the server reports what
// recovery did (image rows, tail records, torn bytes discarded).
//
// The server runs until SIGINT/SIGTERM, then disconnects every client
// (rolling back their open transactions), flushes and exits. Clients connect
// with internal/server/client (one Conn per worker, or a client.Pool to
// multiplex), "wowsql -connect addr", or anything speaking the frame format
// documented in the README.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4045", "TCP address to listen on")
	dataPath := flag.String("data", "", "database file (default: in-memory)")
	walPath := flag.String("wal", "", "write-ahead log file (default: in-memory)")
	cacheSize := flag.Int("cache", 0, "shared plan cache size in statements (default 256)")
	metricsAddr := flag.String("metrics", "", "HTTP address serving /metrics as JSON (default: disabled)")
	checkpoint := flag.Duration("checkpoint", 0, "periodic WAL checkpoint interval, e.g. 30s (default: disabled)")
	replicaOf := flag.String("replica-of", "", "run as a read-only replica streaming from the primary at this address")
	flag.Parse()

	if *replicaOf != "" && (*dataPath != "" || *walPath != "" || *checkpoint != 0) {
		fatal(fmt.Errorf("-replica-of keeps all state in memory; it cannot be combined with -data, -wal or -checkpoint"))
	}

	db, err := engine.Open(engine.Options{
		DataPath: *dataPath, WALPath: *walPath,
		PlanCacheSize: *cacheSize, CheckpointInterval: *checkpoint,
	})
	if err != nil {
		fatal(err)
	}
	if rec := db.Recovery(); rec.Recovered {
		from := "log start"
		if rec.FromCheckpoint {
			from = fmt.Sprintf("checkpoint image (%d rows)", rec.ImageRows)
		}
		fmt.Printf("wowserver: recovered from %s in %s: %d tail record(s) read, %d applied, %d torn byte(s) discarded\n",
			from, rec.Duration.Round(time.Millisecond), rec.TailRecords, rec.TailApplied, rec.BytesDiscarded)
	}

	srv := server.New(db)
	var replica *server.Replica
	if *replicaOf != "" {
		replica = server.NewReplica(db, *replicaOf)
		srv.SetReadOnly(true)
		srv.SetLSNSource(replica.AppliedLSN)
		replica.Start()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if replica != nil {
		fmt.Printf("%s listening on %s (protocol v%s), read-only replica of %s\n", server.Banner, ln.Addr(), wire.Current, *replicaOf)
	} else {
		fmt.Printf("%s listening on %s (protocol v%s)\n", server.Banner, ln.Addr(), wire.Current)
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "wowserver: metrics:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("wowserver: %s, shutting down\n", sig)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if replica != nil {
		replica.Stop()
		rst := replica.Stats()
		fmt.Printf("wowserver: replica applied %d transaction(s) through LSN %d\n", rst.TxnsApplied, rst.AppliedLSN)
	}
	stats := srv.Stats()
	fmt.Printf("wowserver: served %d connection(s), %d message(s), %d row(s) sent, %d batch row(s) received, %d handshake(s) rejected\n",
		stats.ConnectionsAccepted, stats.MessagesServed, stats.RowsSent, stats.BatchRowsReceived, stats.HandshakesRejected)
	if err := db.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wowserver:", err)
	os.Exit(1)
}
