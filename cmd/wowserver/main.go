// Command wowserver serves the engine over the wire protocol: a TCP session
// manager in front of one shared database, one goroutine per connection, all
// connections sharing the engine-wide plan cache so concurrent clients
// preparing the same statements compile them once.
//
// Usage:
//
//	wowserver [-addr 127.0.0.1:4045] [-data file.db] [-wal file.wal] [-cache 256]
//
// The server runs until SIGINT/SIGTERM, then disconnects every client
// (rolling back their open transactions), flushes and exits. Clients connect
// with internal/server/client, "wowsql -connect addr", or anything speaking
// the frame format documented in the README.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4045", "TCP address to listen on")
	dataPath := flag.String("data", "", "database file (default: in-memory)")
	walPath := flag.String("wal", "", "write-ahead log file (default: in-memory)")
	cacheSize := flag.Int("cache", 0, "shared plan cache size in statements (default 256)")
	flag.Parse()

	db, err := engine.Open(engine.Options{DataPath: *dataPath, WALPath: *walPath, PlanCacheSize: *cacheSize})
	if err != nil {
		fatal(err)
	}

	srv := server.New(db)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wowserver listening on %s\n", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("wowserver: %s, shutting down\n", sig)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	stats := srv.Stats()
	fmt.Printf("wowserver: served %d connection(s), %d message(s), %d row(s) sent\n",
		stats.ConnectionsAccepted, stats.MessagesServed, stats.RowsSent)
	if err := db.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wowserver:", err)
	os.Exit(1)
}
