// Command wowbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	wowbench -experiment=E1        # one experiment
//	wowbench -experiment=all       # the whole suite (default)
//	wowbench -scale=quick          # reduced sizes for a fast smoke run
//	wowbench -remote=host:port     # benchmark a running wowserver instead
//	wowbench -remote=... -clients=8 -ops=2000
//
// With -remote, wowbench skips the local experiments and drives the given
// wowserver over the wire protocol: it loads a small table, then measures
// prepared point-query throughput with -clients concurrent connections all
// preparing the identical statement — the shared-plan-cache serving path.
//
// The experiment index (what each table/figure measures and which modules it
// exercises) is in DESIGN.md; measured results are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/server/client"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (E1..E11) or 'all'")
	scale := flag.String("scale", "full", "workload scale: 'full' or 'quick'")
	remote := flag.String("remote", "", "wowserver address; benchmark it over the wire instead of running local experiments")
	clients := flag.Int("clients", 4, "concurrent connections for -remote")
	ops := flag.Int("ops", 1000, "queries per connection for -remote")
	flag.Parse()

	if *remote != "" {
		if err := runRemote(*remote, *clients, *ops); err != nil {
			fmt.Fprintf(os.Stderr, "wowbench: remote: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := harness.Full
	if strings.EqualFold(*scale, "quick") {
		cfg = harness.Quick
	}

	ids := harness.Experiments
	if !strings.EqualFold(*experiment, "all") {
		ids = []string{strings.ToUpper(*experiment)}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := harness.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wowbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %s at scale %s)\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
	}

	if err := printEngineStats(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "wowbench: engine stats: %v\n", err)
		os.Exit(1)
	}
}

// printEngineStats runs a short prepared-statement workload on a fresh
// database and prints the engine's plan-cache and cursor counters, so a bench
// run always ends with a picture of what the statement machinery did.
func printEngineStats(cfg harness.Config) error {
	db := engine.OpenMemory()
	defer db.Close()
	if err := workload.Populate(db, workload.SmallSizes); err != nil {
		return err
	}
	s := db.Session()
	lookup, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
	if err != nil {
		return err
	}
	defer lookup.Close()
	n := cfg.Operations
	for i := 0; i < n; i++ {
		rows, err := lookup.Query(types.NewInt(int64(1 + i%workload.SmallSizes.Customers)))
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			return err
		}
		rows.Close()
	}
	// Re-preparing identical text is the plan cache's hit case.
	for i := 0; i < n; i++ {
		again, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
		if err != nil {
			return err
		}
		again.Close()
	}
	// Write path: a prepared UPDATE rebinding per iteration (one cached write
	// plan) and one batch-bound INSERT.
	update, err := s.Prepare("UPDATE customers SET credit = ? WHERE id = ?")
	if err != nil {
		return err
	}
	defer update.Close()
	for i := 0; i < n; i++ {
		if _, err := update.Exec(types.NewFloat(float64(500+i)), types.NewInt(int64(1+i%workload.SmallSizes.Customers))); err != nil {
			return err
		}
	}
	insert, err := s.Prepare("INSERT INTO customers (id, name, city) VALUES (?, ?, ?)")
	if err != nil {
		return err
	}
	defer insert.Close()
	batch := make([][]types.Value, n)
	for i := range batch {
		batch[i] = []types.Value{
			types.NewInt(int64(1000000 + i)),
			types.NewString("Batch Customer"),
			types.NewString("Boston"),
		}
	}
	if _, err := insert.ExecBatch(batch); err != nil {
		return err
	}
	stats := db.Stats()
	fmt.Println("engine statement machinery (fresh db, prepared point-query + write workload):")
	fmt.Printf("  statements prepared:  %d\n", stats.StatementsPrepared)
	fmt.Printf("  plan cache hits:      %d\n", stats.PlanCacheHits)
	fmt.Printf("  plan cache misses:    %d\n", stats.PlanCacheMisses)
	fmt.Printf("  plan cache evictions: %d\n", stats.PlanCacheEvictions)
	fmt.Printf("  cursors opened:       %d\n", stats.CursorsOpened)
	fmt.Printf("  cursors closed:       %d\n", stats.CursorsClosed)
	fmt.Printf("  rows streamed:        %d\n", stats.RowsStreamed)
	fmt.Printf("  write plans cached:   %d\n", stats.WritePlansCached)
	fmt.Printf("  batch rows executed:  %d\n", stats.BatchRowsExecuted)
	return nil
}

// remoteRows is how many rows the remote benchmark loads before measuring.
const remoteRows = 1000

// runRemote benchmarks a running wowserver: one connection loads the
// workload table, then `clients` connections each prepare the identical
// point query and run `ops` executions. Every connection preparing the same
// text exercises the server's shared plan cache — the first compile is the
// only one.
func runRemote(addr string, clients, ops int) error {
	if clients < 1 {
		clients = 1
	}
	setup, err := client.Dial(addr)
	if err != nil {
		return err
	}
	// A private table name keeps reruns against a long-lived server working.
	table := fmt.Sprintf("bench_customers_%d", time.Now().UnixNano())
	if _, err := setup.Exec(fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, name TEXT, credit FLOAT)", table)); err != nil {
		setup.Close()
		return err
	}
	insert, err := setup.Prepare(fmt.Sprintf("INSERT INTO %s (id, name, credit) VALUES (?, ?, ?)", table))
	if err != nil {
		setup.Close()
		return err
	}
	loadStart := time.Now()
	if err := setup.Begin(); err != nil {
		setup.Close()
		return err
	}
	for i := 1; i <= remoteRows; i++ {
		if _, err := insert.Exec(types.NewInt(int64(i)), types.NewString("Remote Customer"), types.NewFloat(float64(i))); err != nil {
			setup.Close()
			return err
		}
	}
	if err := setup.Commit(); err != nil {
		setup.Close()
		return err
	}
	insert.Close()
	loadTime := time.Since(loadStart)

	query := fmt.Sprintf("SELECT name, credit FROM %s WHERE id = ?", table)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			stmt, err := c.Prepare(query)
			if err != nil {
				errs <- err
				return
			}
			defer stmt.Close()
			for i := 0; i < ops; i++ {
				rows, err := stmt.Query(types.NewInt(int64(1 + (w*ops+i)%remoteRows)))
				if err != nil {
					errs <- err
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)
	total := clients * ops
	fmt.Printf("wowbench remote benchmark against %s\n", addr)
	fmt.Printf("  load: %d rows in %s (%.0f rows/s, one txn over the wire)\n",
		remoteRows, loadTime.Round(time.Millisecond), float64(remoteRows)/loadTime.Seconds())
	fmt.Printf("  point queries: %d clients x %d ops = %d queries in %s\n", clients, ops, total, elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.0f queries/s (%.1f µs/query per client)\n",
		float64(total)/elapsed.Seconds(), float64(elapsed.Microseconds())*float64(clients)/float64(total))
	// Clean up so repeated runs do not accumulate tables server-side.
	if _, err := setup.Exec("DROP TABLE " + table); err != nil {
		setup.Close()
		return err
	}
	return setup.Close()
}
