// Command wowbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	wowbench -experiment=E1        # one experiment
//	wowbench -experiment=all       # the whole suite (default)
//	wowbench -scale=quick          # reduced sizes for a fast smoke run
//
// The experiment index (what each table/figure measures and which modules it
// exercises) is in DESIGN.md; measured results are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	scale := flag.String("scale", "full", "workload scale: 'full' or 'quick'")
	flag.Parse()

	cfg := harness.Full
	if strings.EqualFold(*scale, "quick") {
		cfg = harness.Quick
	}

	ids := harness.Experiments
	if !strings.EqualFold(*experiment, "all") {
		ids = []string{strings.ToUpper(*experiment)}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := harness.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wowbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %s at scale %s)\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
	}
}
