// Command wowbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	wowbench -experiment=E1        # one experiment
//	wowbench -experiment=all       # the whole suite (default)
//	wowbench -scale=quick          # reduced sizes for a fast smoke run
//
// The experiment index (what each table/figure measures and which modules it
// exercises) is in DESIGN.md; measured results are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	scale := flag.String("scale", "full", "workload scale: 'full' or 'quick'")
	flag.Parse()

	cfg := harness.Full
	if strings.EqualFold(*scale, "quick") {
		cfg = harness.Quick
	}

	ids := harness.Experiments
	if !strings.EqualFold(*experiment, "all") {
		ids = []string{strings.ToUpper(*experiment)}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := harness.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wowbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %s at scale %s)\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
	}

	if err := printEngineStats(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "wowbench: engine stats: %v\n", err)
		os.Exit(1)
	}
}

// printEngineStats runs a short prepared-statement workload on a fresh
// database and prints the engine's plan-cache and cursor counters, so a bench
// run always ends with a picture of what the statement machinery did.
func printEngineStats(cfg harness.Config) error {
	db := engine.OpenMemory()
	defer db.Close()
	if err := workload.Populate(db, workload.SmallSizes); err != nil {
		return err
	}
	s := db.Session()
	lookup, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
	if err != nil {
		return err
	}
	defer lookup.Close()
	n := cfg.Operations
	for i := 0; i < n; i++ {
		rows, err := lookup.Query(types.NewInt(int64(1 + i%workload.SmallSizes.Customers)))
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			return err
		}
		rows.Close()
	}
	// Re-preparing identical text is the plan cache's hit case.
	for i := 0; i < n; i++ {
		again, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
		if err != nil {
			return err
		}
		again.Close()
	}
	// Write path: a prepared UPDATE rebinding per iteration (one cached write
	// plan) and one batch-bound INSERT.
	update, err := s.Prepare("UPDATE customers SET credit = ? WHERE id = ?")
	if err != nil {
		return err
	}
	defer update.Close()
	for i := 0; i < n; i++ {
		if _, err := update.Exec(types.NewFloat(float64(500+i)), types.NewInt(int64(1+i%workload.SmallSizes.Customers))); err != nil {
			return err
		}
	}
	insert, err := s.Prepare("INSERT INTO customers (id, name, city) VALUES (?, ?, ?)")
	if err != nil {
		return err
	}
	defer insert.Close()
	batch := make([][]types.Value, n)
	for i := range batch {
		batch[i] = []types.Value{
			types.NewInt(int64(1000000 + i)),
			types.NewString("Batch Customer"),
			types.NewString("Boston"),
		}
	}
	if _, err := insert.ExecBatch(batch); err != nil {
		return err
	}
	stats := db.Stats()
	fmt.Println("engine statement machinery (fresh db, prepared point-query + write workload):")
	fmt.Printf("  statements prepared:  %d\n", stats.StatementsPrepared)
	fmt.Printf("  plan cache hits:      %d\n", stats.PlanCacheHits)
	fmt.Printf("  plan cache misses:    %d\n", stats.PlanCacheMisses)
	fmt.Printf("  plan cache evictions: %d\n", stats.PlanCacheEvictions)
	fmt.Printf("  cursors opened:       %d\n", stats.CursorsOpened)
	fmt.Printf("  cursors closed:       %d\n", stats.CursorsClosed)
	fmt.Printf("  rows streamed:        %d\n", stats.RowsStreamed)
	fmt.Printf("  write plans cached:   %d\n", stats.WritePlansCached)
	fmt.Printf("  batch rows executed:  %d\n", stats.BatchRowsExecuted)
	return nil
}
