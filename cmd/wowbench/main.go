// Command wowbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	wowbench -experiment=E1        # one experiment
//	wowbench -experiment=all       # the whole suite (default)
//	wowbench -scale=quick          # reduced sizes for a fast smoke run
//	wowbench -perfdir=.            # also write BENCH_<id>.json perf records
//	wowbench -remote=host:port     # benchmark a running wowserver instead
//	wowbench -remote=... -clients=8 -ops=2000 -pool=4 -batch=200
//
// With -remote, wowbench skips the local experiments and drives the given
// wowserver over the wire protocol v2: it bulk-loads a table through the
// connection pool with ExecBatch frames (-pool connections, -batch rows per
// frame), then measures prepared point-query throughput with -clients
// workers multiplexed over the same pool, all preparing the identical
// statement — the shared-plan-cache serving path.
//
// The experiment index (what each table/figure measures and which modules it
// exercises) is in DESIGN.md; measured results are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/server/client"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (E1..E17) or 'all'")
	scale := flag.String("scale", "full", "workload scale: 'full' or 'quick'")
	remote := flag.String("remote", "", "wowserver address; benchmark it over the wire instead of running local experiments")
	clients := flag.Int("clients", 4, "concurrent query workers for -remote")
	ops := flag.Int("ops", 1000, "queries per worker for -remote")
	poolSize := flag.Int("pool", 0, "connection pool size for -remote (default: -clients)")
	batch := flag.Int("batch", 200, "rows per ExecBatch frame for the -remote load phase")
	perfDir := flag.String("perfdir", "", "directory to write machine-readable BENCH_<id>.json perf records into (empty: don't)")
	flag.Parse()

	if *remote != "" {
		if *poolSize <= 0 {
			*poolSize = *clients
		}
		if err := runRemote(*remote, *clients, *ops, *poolSize, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "wowbench: remote: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := harness.Full
	if strings.EqualFold(*scale, "quick") {
		cfg = harness.Quick
	}

	ids := harness.Experiments
	if !strings.EqualFold(*experiment, "all") {
		ids = []string{strings.ToUpper(*experiment)}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := harness.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wowbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %s at scale %s)\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
		if *perfDir != "" {
			path, err := harness.WritePerf(*perfDir, strings.ToLower(*scale), table)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wowbench: %s: perf record: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("(perf record written to %s)\n\n", path)
		}
	}

	if err := printEngineStats(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "wowbench: engine stats: %v\n", err)
		os.Exit(1)
	}
}

// printEngineStats runs a short prepared-statement workload on a fresh
// database and prints the engine's plan-cache and cursor counters, so a bench
// run always ends with a picture of what the statement machinery did.
func printEngineStats(cfg harness.Config) error {
	db := engine.OpenMemory()
	defer db.Close()
	if err := workload.Populate(db, workload.SmallSizes); err != nil {
		return err
	}
	s := db.Session()
	lookup, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
	if err != nil {
		return err
	}
	defer lookup.Close()
	n := cfg.Operations
	for i := 0; i < n; i++ {
		rows, err := lookup.Query(types.NewInt(int64(1 + i%workload.SmallSizes.Customers)))
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			return err
		}
		rows.Close()
	}
	// Re-preparing identical text is the plan cache's hit case.
	for i := 0; i < n; i++ {
		again, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
		if err != nil {
			return err
		}
		again.Close()
	}
	// Write path: a prepared UPDATE rebinding per iteration (one cached write
	// plan) and one batch-bound INSERT.
	update, err := s.Prepare("UPDATE customers SET credit = ? WHERE id = ?")
	if err != nil {
		return err
	}
	defer update.Close()
	for i := 0; i < n; i++ {
		if _, err := update.Exec(types.NewFloat(float64(500+i)), types.NewInt(int64(1+i%workload.SmallSizes.Customers))); err != nil {
			return err
		}
	}
	insert, err := s.Prepare("INSERT INTO customers (id, name, city) VALUES (?, ?, ?)")
	if err != nil {
		return err
	}
	defer insert.Close()
	batch := make([][]types.Value, n)
	for i := range batch {
		batch[i] = []types.Value{
			types.NewInt(int64(1000000 + i)),
			types.NewString("Batch Customer"),
			types.NewString("Boston"),
		}
	}
	if _, err := insert.ExecBatch(batch); err != nil {
		return err
	}
	stats := db.Stats()
	fmt.Println("engine statement machinery (fresh db, prepared point-query + write workload):")
	fmt.Printf("  statements prepared:  %d\n", stats.StatementsPrepared)
	fmt.Printf("  plan cache hits:      %d\n", stats.PlanCacheHits)
	fmt.Printf("  plan cache misses:    %d\n", stats.PlanCacheMisses)
	fmt.Printf("  plan cache evictions: %d\n", stats.PlanCacheEvictions)
	fmt.Printf("  cursors opened:       %d\n", stats.CursorsOpened)
	fmt.Printf("  cursors closed:       %d\n", stats.CursorsClosed)
	fmt.Printf("  rows streamed:        %d\n", stats.RowsStreamed)
	fmt.Printf("  write plans cached:   %d\n", stats.WritePlansCached)
	fmt.Printf("  batch rows executed:  %d\n", stats.BatchRowsExecuted)
	fmt.Println("mvcc concurrency control:")
	fmt.Printf("  snapshots taken:      %d\n", stats.SnapshotsTaken)
	fmt.Printf("  write conflicts:      %d\n", stats.WriteConflicts)
	fmt.Printf("  deadlocks detected:   %d\n", stats.DeadlocksDetected)
	fmt.Printf("  row versions gc'd:    %d\n", stats.VersionsGCed)
	return nil
}

// remoteRows is how many rows the remote benchmark loads before measuring.
const remoteRows = 1000

// runRemote benchmarks a running wowserver over protocol v2: the load phase
// ships ExecBatch frames through the connection pool, then `clients` workers
// multiplex over the same pool running the identical prepared point query.
// Every connection preparing the same text exercises the server's shared
// plan cache — the first compile is the only one — and every worker
// re-checking out a pooled connection exercises its prepared-statement
// cache — the first Prepare per connection is the only round trip.
func runRemote(addr string, clients, ops, poolSize, batch int) error {
	if clients < 1 {
		clients = 1
	}
	if batch < 1 {
		batch = 1
	}
	pool := client.NewPool(addr, client.PoolConfig{Size: poolSize})
	defer pool.Close()

	// A private table name keeps reruns against a long-lived server working.
	table := fmt.Sprintf("bench_customers_%d", time.Now().UnixNano())
	setup, err := pool.Get()
	if err != nil {
		return err
	}
	fmt.Printf("wowbench remote benchmark against %s (protocol v%s, %s)\n",
		addr, setup.Conn().ProtocolVersion(), setup.Conn().ServerBanner())
	if _, err := setup.Exec(fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, name TEXT, credit FLOAT)", table)); err != nil {
		setup.Release()
		return err
	}
	insertSQL := fmt.Sprintf("INSERT INTO %s (id, name, credit) VALUES (?, ?, ?)", table)
	loadStart := time.Now()
	frames := 0
	for start := 0; start < remoteRows; start += batch {
		end := min(start+batch, remoteRows)
		rows := make([][]types.Value, 0, end-start)
		for i := start; i < end; i++ {
			rows = append(rows, []types.Value{
				types.NewInt(int64(i + 1)), types.NewString("Remote Customer"), types.NewFloat(float64(i + 1)),
			})
		}
		if _, err := setup.ExecBatch(insertSQL, rows); err != nil {
			setup.Release()
			return err
		}
		frames++
	}
	loadTime := time.Since(loadStart)
	setup.Release()

	query := fmt.Sprintf("SELECT name, credit FROM %s WHERE id = ?", table)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := pool.With(func(h *client.PooledConn) error {
				for i := 0; i < ops; i++ {
					rows, err := h.Query(query, types.NewInt(int64(1+(w*ops+i)%remoteRows)))
					if err != nil {
						return err
					}
					for rows.Next() {
					}
					err = rows.Err()
					if cerr := rows.Close(); err == nil {
						err = cerr
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)
	total := clients * ops
	stats := pool.Stats()
	fmt.Printf("  load: %d rows in %d ExecBatch frame(s) of <= %d in %s (%.0f rows/s)\n",
		remoteRows, frames, batch, loadTime.Round(time.Millisecond), float64(remoteRows)/loadTime.Seconds())
	fmt.Printf("  point queries: %d workers x %d ops over %d pooled connection(s) = %d queries in %s\n",
		clients, ops, pool.Size(), total, elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.0f queries/s (%.1f µs/query per worker)\n",
		float64(total)/elapsed.Seconds(), float64(elapsed.Microseconds())*float64(clients)/float64(total))
	fmt.Printf("  pool: %d dial(s), %d checkout(s), %d idle reuse(s), %d stmt-cache hit(s)\n",
		stats.Dials, stats.Checkouts, stats.IdleReuses, stats.StmtCacheHits)
	// Clean up so repeated runs do not accumulate tables server-side.
	return pool.With(func(h *client.PooledConn) error {
		_, err := h.Exec("DROP TABLE " + table)
		return err
	})
}
