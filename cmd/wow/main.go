// Command wow is the forms workbench: it loads a SQL script and a form
// definition file, opens windows, and drives them either from a keystroke
// script (for repeatable demos) or from simple commands on standard input.
// After every step it prints the composited screen, so it works over a plain
// pipe as well as an interactive terminal.
//
// Usage:
//
//	wow -init schema.sql -forms app.fdl -open customer_card [-script "<F2>Boston<F4>"]
//	wow -demo            # built-in order-processing demo
//
// Stdin commands (one per line) when no -script is given:
//
//	keys <script>     send keystrokes, e.g. "keys <F2>Boston<F4>"
//	open <form>       open another window
//	sql <statement>   run SQL directly
//	screen            reprint the screen
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	initPath := flag.String("init", "", "SQL script creating and loading the database")
	formsPath := flag.String("forms", "", "FDL file with the form definitions")
	open := flag.String("open", "", "form to open at startup")
	script := flag.String("script", "", "keystroke script to replay and exit")
	demo := flag.Bool("demo", false, "run the built-in order-processing demo data")
	ansi := flag.Bool("ansi", false, "render with ANSI escape sequences instead of plain text")
	flag.Parse()

	db := engine.OpenMemory()
	session := db.Session()

	var formSource string
	switch {
	case *demo:
		if err := workload.Populate(db, workload.SmallSizes); err != nil {
			fatal(err)
		}
		formSource = workload.StandardForms
		if *open == "" {
			*open = "customer_form"
		}
	default:
		if *initPath != "" {
			sqlBytes, err := os.ReadFile(*initPath)
			if err != nil {
				fatal(err)
			}
			if _, err := session.ExecuteScript(string(sqlBytes)); err != nil {
				fatal(err)
			}
		}
		if *formsPath == "" {
			fatal(fmt.Errorf("either -forms or -demo is required"))
		}
		fdlBytes, err := os.ReadFile(*formsPath)
		if err != nil {
			fatal(err)
		}
		formSource = string(fdlBytes)
	}

	forms, err := core.NewCompiler(db).CompileSource(formSource)
	if err != nil {
		fatal(err)
	}
	byName := map[string]*core.Form{}
	for _, f := range forms {
		byName[f.Def.Name] = f
	}

	manager := core.NewManager(db, 100, 32)
	if *open != "" {
		form, ok := byName[strings.ToLower(*open)]
		if !ok {
			fatal(fmt.Errorf("no form named %q (have %s)", *open, strings.Join(formNames(byName), ", ")))
		}
		if _, err := manager.Open(form, 0, 0); err != nil {
			fatal(err)
		}
	}

	printScreen := func() {
		if *ansi {
			fmt.Print(manager.Screen().RenderANSI())
		} else {
			fmt.Println(manager.Screen().String())
		}
	}
	printScreen()

	if *script != "" {
		if err := manager.HandleScript(*script); err != nil {
			fatal(err)
		}
		printScreen()
		return
	}

	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("wow> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		command, rest, _ := strings.Cut(line, " ")
		switch strings.ToLower(command) {
		case "quit", "exit":
			return
		case "screen":
			printScreen()
		case "keys":
			if err := manager.HandleScript(rest); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			printScreen()
		case "open":
			form, ok := byName[strings.ToLower(strings.TrimSpace(rest))]
			if !ok {
				fmt.Fprintf(os.Stderr, "no form named %q\n", rest)
				continue
			}
			if _, err := manager.Open(form, 0, 0); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			printScreen()
		case "sql":
			stmt, err := session.Prepare(rest)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			if len(stmt.Columns()) > 0 {
				// A SELECT: stream the rows off the cursor.
				rows, err := stmt.Query()
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					stmt.Close()
					continue
				}
				for rows.Next() {
					fmt.Println(rows.Row().String())
				}
				if err := rows.Err(); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
				rows.Close()
				stmt.Close()
				continue
			}
			res, err := stmt.Exec()
			stmt.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			if res.Message != "" {
				fmt.Println(res.Message)
			}
		default:
			fmt.Fprintln(os.Stderr, "commands: keys <script> | open <form> | sql <stmt> | screen | quit")
		}
	}
}

func formNames(byName map[string]*core.Form) []string {
	var names []string
	for name := range byName {
		names = append(names, name)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wow:", err)
	os.Exit(1)
}
