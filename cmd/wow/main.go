// Command wow is the forms workbench: it loads a SQL script and a form
// definition file, opens windows, and drives them either from a keystroke
// script (for repeatable demos) or from simple commands on standard input.
// After every step it prints the composited screen, so it works over a plain
// pipe as well as an interactive terminal.
//
// Usage:
//
//	wow -init schema.sql -forms app.fdl -open customer_card [-script "<F2>Boston<F4>"]
//	wow -demo            # built-in order-processing demo
//	wow -demo -connect 127.0.0.1:4045   # browse a (fresh) wowserver over the wire
//
// With -connect the windows browse a remote wowserver instead of an
// in-process database: every window query and write travels the wire
// protocol, and the window pager fetches one page per navigation step. The
// schema still loads locally (DDL only) so the forms can compile against a
// catalog; -demo additionally loads the demo workload into the remote server
// first (it must be empty), while -init runs the script on the server.
//
// Stdin commands (one per line) when no -script is given:
//
//	keys <script>     send keystrokes, e.g. "keys <F2>Boston<F4>"
//	open <form>       open another window
//	sql <statement>   run SQL directly (against the server with -connect)
//	screen            reprint the screen
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server/client"
	"repro/internal/sql"
	"repro/internal/workload"
)

func main() {
	initPath := flag.String("init", "", "SQL script creating and loading the database")
	formsPath := flag.String("forms", "", "FDL file with the form definitions")
	open := flag.String("open", "", "form to open at startup")
	script := flag.String("script", "", "keystroke script to replay and exit")
	demo := flag.Bool("demo", false, "run the built-in order-processing demo data")
	connect := flag.String("connect", "", "browse a remote wowserver at this address instead of an in-process database")
	ansi := flag.Bool("ansi", false, "render with ANSI escape sequences instead of plain text")
	flag.Parse()

	db := engine.OpenMemory()
	session := db.Session()

	var remote *client.Conn
	if *connect != "" {
		var err error
		remote, err = client.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		defer remote.Close()
		fmt.Fprintf(os.Stderr, "connected to %s (%s, protocol v%s)\n",
			*connect, remote.ServerBanner(), remote.ProtocolVersion())
	}

	var formSource string
	switch {
	case *demo:
		if remote != nil {
			// Load the demo workload into the server over the wire, and the
			// schema DDL into the local shadow catalog for form compilation.
			pool := client.NewPool(*connect, client.PoolConfig{Size: 2})
			err := workload.PopulateRemote(pool, workload.SmallSizes, workload.RemoteOptions{BatchSize: 200, Workers: 2})
			pool.Close()
			if err != nil {
				fatal(fmt.Errorf("loading the demo workload into %s (is the server fresh?): %w", *connect, err))
			}
			if _, err := session.ExecuteScript(workload.StandardSchema); err != nil {
				fatal(err)
			}
		} else if err := workload.Populate(db, workload.SmallSizes); err != nil {
			fatal(err)
		}
		formSource = workload.StandardForms
		if *open == "" {
			*open = "customer_form"
		}
	default:
		if *initPath != "" {
			sqlBytes, err := os.ReadFile(*initPath)
			if err != nil {
				fatal(err)
			}
			if err := runInitScript(session, remote, string(sqlBytes)); err != nil {
				fatal(err)
			}
		}
		if *formsPath == "" {
			fatal(fmt.Errorf("either -forms or -demo is required"))
		}
		fdlBytes, err := os.ReadFile(*formsPath)
		if err != nil {
			fatal(err)
		}
		formSource = string(fdlBytes)
	}

	forms, err := core.NewCompiler(db).CompileSource(formSource)
	if err != nil {
		fatal(err)
	}
	byName := map[string]*core.Form{}
	for _, f := range forms {
		byName[f.Def.Name] = f
	}

	manager := core.NewManager(db, 100, 32)
	openWindow := func(form *core.Form) (*core.Window, error) {
		if remote != nil {
			return manager.OpenOn(form, core.NewRemoteSource(remote), 0, 0)
		}
		return manager.Open(form, 0, 0)
	}
	if *open != "" {
		form, ok := byName[strings.ToLower(*open)]
		if !ok {
			fatal(fmt.Errorf("no form named %q (have %s)", *open, strings.Join(formNames(byName), ", ")))
		}
		if _, err := openWindow(form); err != nil {
			fatal(err)
		}
	}

	printScreen := func() {
		if *ansi {
			fmt.Print(manager.Screen().RenderANSI())
		} else {
			fmt.Println(manager.Screen().String())
		}
	}
	printScreen()

	if *script != "" {
		if err := manager.HandleScript(*script); err != nil {
			fatal(err)
		}
		printScreen()
		return
	}

	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("wow> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		command, rest, _ := strings.Cut(line, " ")
		switch strings.ToLower(command) {
		case "quit", "exit":
			return
		case "screen":
			printScreen()
		case "keys":
			if err := manager.HandleScript(rest); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			printScreen()
		case "open":
			form, ok := byName[strings.ToLower(strings.TrimSpace(rest))]
			if !ok {
				fmt.Fprintf(os.Stderr, "no form named %q\n", rest)
				continue
			}
			if _, err := openWindow(form); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			printScreen()
		case "sql":
			if remote != nil {
				runRemoteSQL(remote, rest)
				continue
			}
			stmt, err := session.Prepare(rest)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			if len(stmt.Columns()) > 0 {
				// A SELECT: stream the rows off the cursor.
				rows, err := stmt.Query()
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					stmt.Close()
					continue
				}
				for rows.Next() {
					fmt.Println(rows.Row().String())
				}
				if err := rows.Err(); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
				rows.Close()
				stmt.Close()
				continue
			}
			res, err := stmt.Exec()
			stmt.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			if res.Message != "" {
				fmt.Println(res.Message)
			}
		default:
			fmt.Fprintln(os.Stderr, "commands: keys <script> | open <form> | sql <stmt> | screen | quit")
		}
	}
}

func formNames(byName map[string]*core.Form) []string {
	var names []string
	for name := range byName {
		names = append(names, name)
	}
	return names
}

// runInitScript runs the -init SQL. Locally the whole script executes; with
// -connect it executes statement by statement on the server, and the schema
// statements (CREATE ...) additionally run on the local shadow database so
// the forms have a catalog to compile against.
func runInitScript(session *engine.Session, remote *client.Conn, source string) error {
	if remote == nil {
		_, err := session.ExecuteScript(source)
		return err
	}
	stmts, err := sql.ParseAll(source)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		text := stmt.String()
		if _, err := remote.Exec(text); err != nil {
			return fmt.Errorf("remote: %s: %w", text, err)
		}
		switch stmt.(type) {
		case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.CreateViewStmt:
			if _, err := session.Execute(text); err != nil {
				return fmt.Errorf("local shadow catalog: %s: %w", text, err)
			}
		}
	}
	return nil
}

// runRemoteSQL runs one ad-hoc statement against the server, streaming
// SELECT rows in fetch batches. The statement is prepared once and
// dispatched on its column list — never try-Query-then-Exec, which would
// execute DML twice (the server runs a non-query on the first attempt
// before the client sees it is not a cursor).
func runRemoteSQL(remote *client.Conn, text string) {
	stmt, err := remote.Prepare(text)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	defer stmt.Close()
	if len(stmt.Columns()) > 0 {
		rows, err := stmt.Query()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		for rows.Next() {
			fmt.Println(rows.Row().String())
		}
		if err := rows.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		rows.Close()
		return
	}
	res, err := stmt.Exec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wow:", err)
	os.Exit(1)
}
