// Command wowsql is the SQL shell over the engine: it reads statements
// (from files given on the command line, or from standard input) and prints
// results as aligned tables.
//
// Usage:
//
//	wowsql [-data file.db] [-wal file.wal] [script.sql ...]
//
// With no script arguments, statements are read from standard input, one per
// line (or separated by semicolons). "EXPLAIN <statement>" prints the plan
// for any SELECT, INSERT, UPDATE or DELETE instead of running it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/types"
)

func main() {
	dataPath := flag.String("data", "", "database file (default: in-memory)")
	walPath := flag.String("wal", "", "write-ahead log file (default: in-memory)")
	flag.Parse()

	db, err := engine.Open(engine.Options{DataPath: *dataPath, WALPath: *walPath})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	session := db.Session()

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			script, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if err := runScript(session, string(script)); err != nil {
				fatal(err)
			}
		}
		return
	}

	fmt.Println("wowsql — type SQL statements, end them with ';'. Ctrl-D to quit.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var pending strings.Builder
	for {
		fmt.Print("wow> ")
		if !scanner.Scan() {
			break
		}
		pending.WriteString(scanner.Text())
		pending.WriteByte('\n')
		if !strings.Contains(scanner.Text(), ";") {
			continue
		}
		if err := runScript(session, pending.String()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		pending.Reset()
	}
}

// runScript executes the script one statement at a time. SELECTs run through
// a prepared statement's streaming cursor, printing rows as they are pulled —
// a query over a huge table starts printing immediately instead of
// materialising first. EXPLAIN <statement> renders the plan the engine would
// run — for SELECT and DML alike — without executing it. Everything else
// executes and prints its outcome.
func runScript(session *engine.Session, script string) error {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		switch stmt := stmt.(type) {
		case *sql.SelectStmt:
			if err := streamSelect(session, stmt.String()); err != nil {
				return err
			}
		case *sql.ExplainStmt:
			if err := explainStatement(session, stmt); err != nil {
				return err
			}
		default:
			res, err := session.ExecuteStmt(stmt)
			if err != nil {
				return err
			}
			printResult(res)
		}
	}
	return nil
}

// explainStatement prints the plan tree of the wrapped statement through the
// prepared statement's ExplainPlan, which since the planned-DML refactor
// covers INSERT, UPDATE and DELETE as well as SELECT. Preparing the EXPLAIN
// text (not the inner statement) keeps the engine on its render-only path —
// the plan is built and cached, but no operator tree is compiled.
func explainStatement(session *engine.Session, stmt *sql.ExplainStmt) error {
	prepared, err := session.Prepare(stmt.String())
	if err != nil {
		return err
	}
	defer prepared.Close()
	text := prepared.ExplainPlan()
	if text == "" {
		return fmt.Errorf("EXPLAIN is not supported for %s", stmt.Stmt.String())
	}
	fmt.Print(text)
	return nil
}

// streamSelect prints a SELECT's rows straight off the cursor. Column widths
// come from the header (and grow per row as needed), since the rows are not
// buffered for measuring.
func streamSelect(session *engine.Session, query string) error {
	stmt, err := session.Prepare(query)
	if err != nil {
		return err
	}
	defer stmt.Close()
	rows, err := stmt.Query()
	if err != nil {
		return err
	}
	defer rows.Close()

	columns := rows.Columns()
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
		if widths[i] < 8 {
			widths[i] = 8
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	printRow(columns)
	sep := make([]string, len(columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	fmt.Println(strings.Join(sep, "-+-"))
	count := 0
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatValue(v)
		}
		printRow(cells)
		count++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d row(s))\n", count)
	return nil
}

func printResult(res *engine.Result) {
	if res == nil {
		return
	}
	if len(res.Columns) == 0 {
		if res.Message != "" {
			fmt.Println(res.Message)
		}
		return
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		rendered[r] = make([]string, len(row))
		for i, v := range row {
			rendered[r][i] = formatValue(v)
			if len(rendered[r][i]) > widths[i] {
				widths[i] = len(rendered[r][i])
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	printRow(res.Columns)
	sep := make([]string, len(res.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	fmt.Println(strings.Join(sep, "-+-"))
	for _, row := range rendered {
		printRow(row)
	}
	fmt.Printf("(%d row(s))\n", len(res.Rows))
}

func formatValue(v types.Value) string {
	if v.IsNull() {
		return ""
	}
	return v.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wowsql:", err)
	os.Exit(1)
}
