// Command wowsql is the SQL shell over the engine: it reads statements
// (from files given on the command line, or from standard input) and prints
// results as aligned tables.
//
// Usage:
//
//	wowsql [-data file.db] [-wal file.wal] [-connect host:port] [script.sql ...]
//
// With no script arguments, statements are read from standard input, one per
// line (or separated by semicolons). "EXPLAIN <statement>" prints the plan
// for any SELECT, INSERT, UPDATE or DELETE instead of running it. With
// -connect the shell runs against a wowserver over the wire protocol instead
// of an embedded engine; the handshake's negotiated protocol version is
// reported on stderr, and -wire-version overrides the offered version (to
// exercise the server's rejection path).
//
// Interactively, a statement error is printed and the shell keeps reading.
// Non-interactively — script files, or statements piped on standard input —
// the first error stops execution and wowsql exits non-zero, so shell
// pipelines and CI steps can rely on the exit code.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/sql"
	"repro/internal/types"
)

// options carries the flag values plus the interactivity decision, so tests
// can drive run directly.
type options struct {
	dataPath string
	walPath  string
	connect  string
	// wireVersion overrides the protocol version offered in the handshake
	// ("major.minor"); it exists so CI can prove the server's rejection path.
	wireVersion string
	scripts     []string
	// interactive selects prompt-and-continue error handling; main sets it
	// when stdin is a terminal and no script files were given.
	interactive bool
}

func main() {
	dataPath := flag.String("data", "", "database file (default: in-memory)")
	walPath := flag.String("wal", "", "write-ahead log file (default: in-memory)")
	connect := flag.String("connect", "", "wowserver address; run remotely over the wire protocol")
	wireVersion := flag.String("wire-version", "", "offer this protocol version in the handshake instead of the current one (testing)")
	flag.Parse()

	opts := options{
		dataPath:    *dataPath,
		walPath:     *walPath,
		connect:     *connect,
		wireVersion: *wireVersion,
		scripts:     flag.Args(),
	}
	if len(opts.scripts) == 0 {
		if info, err := os.Stdin.Stat(); err == nil && info.Mode()&os.ModeCharDevice != 0 {
			opts.interactive = true
		}
	}
	os.Exit(run(opts, os.Stdin, os.Stdout, os.Stderr))
}

// executor runs one script's worth of statements — against the embedded
// engine or a remote server — writing results to out.
type executor interface {
	runScript(script string, out io.Writer) error
	close() error
}

// run is the whole shell: it opens the executor, feeds it scripts or stdin,
// and returns the process exit code.
func run(opts options, stdin io.Reader, stdout, stderr io.Writer) int {
	var exec executor
	if opts.connect != "" {
		var dialOpts client.DialOptions
		if opts.wireVersion != "" {
			v, err := parseWireVersion(opts.wireVersion)
			if err != nil {
				fmt.Fprintln(stderr, "wowsql:", err)
				return 1
			}
			dialOpts.Version = v
		}
		conn, err := client.DialWith(opts.connect, dialOpts)
		if err != nil {
			// Dial already shapes version trouble into legible errors: a
			// *wire.VersionError names both ends' versions, a
			// *client.HandshakeError explains a pre-v2 server.
			fmt.Fprintln(stderr, "wowsql:", err)
			return 1
		}
		// The banner goes to stderr so piped statement output stays clean.
		fmt.Fprintf(stderr, "wowsql: connected to %s (protocol v%s, %s)\n",
			opts.connect, conn.ProtocolVersion(), conn.ServerBanner())
		exec = &remoteExecutor{conn: conn}
	} else {
		db, err := engine.Open(engine.Options{DataPath: opts.dataPath, WALPath: opts.walPath})
		if err != nil {
			fmt.Fprintln(stderr, "wowsql:", err)
			return 1
		}
		exec = &localExecutor{db: db, session: db.Session()}
	}
	defer exec.close()

	if len(opts.scripts) > 0 {
		for _, path := range opts.scripts {
			script, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(stderr, "wowsql:", err)
				return 1
			}
			if err := exec.runScript(string(script), stdout); err != nil {
				fmt.Fprintln(stderr, "wowsql:", err)
				return 1
			}
		}
		return 0
	}

	if opts.interactive {
		fmt.Fprintln(stdout, "wowsql — type SQL statements, end them with ';'. Ctrl-D to quit.")
	}
	scanner := bufio.NewScanner(stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var pending strings.Builder
	for {
		if opts.interactive {
			fmt.Fprint(stdout, "wow> ")
		}
		if !scanner.Scan() {
			break
		}
		pending.WriteString(scanner.Text())
		pending.WriteByte('\n')
		if !strings.Contains(scanner.Text(), ";") {
			continue
		}
		if err := exec.runScript(pending.String(), stdout); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			if !opts.interactive {
				return 1
			}
		}
		pending.Reset()
	}
	// A scan error (a line over the buffer limit) is not end of input: report
	// it and fail, or a pipeline would treat a half-run script as success.
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(stderr, "wowsql: reading input:", err)
		return 1
	}
	// A trailing statement without ";" still runs (echo "SELECT 1" | wowsql).
	if strings.TrimSpace(pending.String()) != "" {
		if err := exec.runScript(pending.String(), stdout); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			if !opts.interactive {
				return 1
			}
		}
	}
	return 0
}

// parseWireVersion parses a "major.minor" protocol version.
func parseWireVersion(s string) (wire.Version, error) {
	var v wire.Version
	if _, err := fmt.Sscanf(s, "%d.%d", &v.Major, &v.Minor); err != nil {
		return v, fmt.Errorf("bad -wire-version %q: want major.minor, e.g. %s", s, wire.Current)
	}
	return v, nil
}

// --- embedded engine ---------------------------------------------------------

type localExecutor struct {
	db      *engine.Database
	session *engine.Session
}

func (e *localExecutor) close() error {
	e.session.Close()
	return e.db.Close()
}

// runScript executes the script one statement at a time. SELECTs run through
// a prepared statement's streaming cursor, printing rows as they are pulled —
// a query over a huge table starts printing immediately instead of
// materialising first. EXPLAIN <statement> renders the plan the engine would
// run — for SELECT and DML alike — without executing it. Everything else
// executes and prints its outcome.
func (e *localExecutor) runScript(script string, out io.Writer) error {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		switch stmt := stmt.(type) {
		case *sql.SelectStmt:
			if err := e.streamSelect(stmt.String(), out); err != nil {
				return err
			}
		case *sql.ExplainStmt:
			if err := e.explainStatement(stmt, out); err != nil {
				return err
			}
		default:
			res, err := e.session.ExecuteStmt(stmt)
			if err != nil {
				return err
			}
			printResult(out, res.Columns, res.Rows, res.Message)
		}
	}
	return nil
}

// explainStatement prints the plan tree of the wrapped statement through the
// prepared statement's ExplainPlan, which covers INSERT, UPDATE and DELETE as
// well as SELECT. Preparing the EXPLAIN text (not the inner statement) keeps
// the engine on its render-only path — the plan is built and cached, but no
// operator tree is compiled.
func (e *localExecutor) explainStatement(stmt *sql.ExplainStmt, out io.Writer) error {
	prepared, err := e.session.Prepare(stmt.String())
	if err != nil {
		return err
	}
	defer prepared.Close()
	text := prepared.ExplainPlan()
	if text == "" {
		return fmt.Errorf("EXPLAIN is not supported for %s", stmt.Stmt.String())
	}
	fmt.Fprint(out, text)
	return nil
}

// streamSelect prints a SELECT's rows straight off the cursor. Column widths
// come from the header (and grow per row as needed), since the rows are not
// buffered for measuring.
func (e *localExecutor) streamSelect(query string, out io.Writer) error {
	stmt, err := e.session.Prepare(query)
	if err != nil {
		return err
	}
	defer stmt.Close()
	rows, err := stmt.Query()
	if err != nil {
		return err
	}
	defer rows.Close()
	count, err := streamRows(out, rows.Columns(), rows.Next, rows.Row, rows.Err)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "(%d row(s))\n", count)
	return nil
}

// --- remote server -----------------------------------------------------------

type remoteExecutor struct {
	conn *client.Conn
}

func (e *remoteExecutor) close() error { return e.conn.Close() }

// runScript splits the script locally (the parser is in the same tree) and
// runs each statement over the wire: SELECTs stream through a remote cursor
// in fetch batches, everything else — DML, DDL, EXPLAIN, BEGIN/COMMIT — round
// trips through Exec and prints the materialised result.
func (e *remoteExecutor) runScript(script string, out io.Writer) error {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if sel, ok := stmt.(*sql.SelectStmt); ok {
			if err := e.streamSelect(sel.String(), out); err != nil {
				return err
			}
			continue
		}
		res, err := e.conn.Exec(stmt.String())
		if err != nil {
			return err
		}
		message := res.Message
		if message == "" && len(res.Columns) == 0 {
			message = fmt.Sprintf("%d row(s) affected", res.RowsAffected)
		}
		printResult(out, res.Columns, res.Rows, message)
	}
	return nil
}

func (e *remoteExecutor) streamSelect(query string, out io.Writer) error {
	rows, err := e.conn.Query(query)
	if err != nil {
		return err
	}
	defer rows.Close()
	count, err := streamRows(out, rows.Columns(), rows.Next, rows.Row, rows.Err)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "(%d row(s))\n", count)
	return nil
}

// --- rendering ---------------------------------------------------------------

// streamRows prints a header and then rows as the cursor yields them,
// returning how many were printed. It works over both the engine's and the
// client's cursor shape.
func streamRows(out io.Writer, columns []string, next func() bool, row func() types.Tuple, rowsErr func() error) (int, error) {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
		if widths[i] < 8 {
			widths[i] = 8
		}
	}
	printAligned(out, widths, columns)
	printSeparator(out, widths)
	count := 0
	for next() {
		r := row()
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = formatValue(v)
		}
		printAligned(out, widths, cells)
		count++
	}
	return count, rowsErr()
}

func printAligned(out io.Writer, widths []int, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf("%-*s", widths[i], c)
	}
	fmt.Fprintln(out, strings.Join(parts, " | "))
}

func printSeparator(out io.Writer, widths []int) {
	sep := make([]string, len(widths))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	fmt.Fprintln(out, strings.Join(sep, "-+-"))
}

func printResult(out io.Writer, columns []string, rows []types.Tuple, message string) {
	if len(columns) == 0 {
		if message != "" {
			fmt.Fprintln(out, message)
		}
		return
	}
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(rows))
	for r, row := range rows {
		rendered[r] = make([]string, len(row))
		for i, v := range row {
			rendered[r][i] = formatValue(v)
			if len(rendered[r][i]) > widths[i] {
				widths[i] = len(rendered[r][i])
			}
		}
	}
	printAligned(out, widths, columns)
	printSeparator(out, widths)
	for _, row := range rendered {
		printAligned(out, widths, row)
	}
	fmt.Fprintf(out, "(%d row(s))\n", len(rows))
}

func formatValue(v types.Value) string {
	if v.IsNull() {
		return ""
	}
	return v.String()
}
