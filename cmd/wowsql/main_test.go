package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/server"
)

// runShell drives run() the way main does for piped input.
func runShell(t *testing.T, opts options, input string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(opts, strings.NewReader(input), &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestPipedStatementsExitZeroOnSuccess(t *testing.T) {
	code, stdout, stderr := runShell(t, options{}, `
CREATE TABLE t (id INT PRIMARY KEY, name TEXT);
INSERT INTO t VALUES (1, 'one'), (2, 'two');
SELECT id, name FROM t ORDER BY id;
`)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, stderr)
	}
	if !strings.Contains(stdout, "one") || !strings.Contains(stdout, "(2 row(s))") {
		t.Fatalf("stdout = %q", stdout)
	}
}

// TestPipedErrorExitsNonZero is the regression test for the seed behaviour
// where a failing statement in piped mode still exited 0.
func TestPipedErrorExitsNonZero(t *testing.T) {
	code, stdout, stderr := runShell(t, options{}, `
CREATE TABLE t (id INT PRIMARY KEY);
INSERT INTO missing VALUES (1);
SELECT * FROM t;
`)
	if code == 0 {
		t.Fatalf("exit code = 0 after a failing statement; stderr = %q", stderr)
	}
	if !strings.Contains(stderr, "missing") {
		t.Fatalf("stderr = %q, want the error mentioning the missing table", stderr)
	}
	// Execution stops at the error: the following SELECT must not have run.
	if strings.Contains(stdout, "row(s)") {
		t.Fatalf("statements after the error still ran: %q", stdout)
	}
}

func TestPipedParseErrorExitsNonZero(t *testing.T) {
	code, _, stderr := runShell(t, options{}, "SELEKT nonsense;\n")
	if code == 0 {
		t.Fatalf("exit code = 0 for a parse error; stderr = %q", stderr)
	}
}

func TestTrailingStatementWithoutSemicolonRuns(t *testing.T) {
	code, stdout, _ := runShell(t, options{}, "CREATE TABLE t (id INT PRIMARY KEY);\nSELECT id FROM t")
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(stdout, "(0 row(s))") {
		t.Fatalf("trailing statement did not run: %q", stdout)
	}
}

func TestInteractiveErrorKeepsReading(t *testing.T) {
	code, stdout, stderr := runShell(t, options{interactive: true}, `
CREATE TABLE t (id INT PRIMARY KEY);
INSERT INTO missing VALUES (1);
INSERT INTO t VALUES (7);
SELECT id FROM t;
`)
	if code != 0 {
		t.Fatalf("interactive shell exit code = %d", code)
	}
	if !strings.Contains(stderr, "missing") {
		t.Fatalf("stderr = %q", stderr)
	}
	if !strings.Contains(stdout, "(1 row(s))") {
		t.Fatalf("statements after the interactive error did not run: %q", stdout)
	}
}

func TestOversizedInputLineExitsNonZero(t *testing.T) {
	// A line beyond the scanner buffer is a read error, not end of input; the
	// statements after it never ran, so the exit code must say so.
	huge := "INSERT INTO t VALUES (1, '" + strings.Repeat("x", 2<<20) + "');"
	code, _, stderr := runShell(t, options{}, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT);\n"+huge+"\n")
	if code == 0 {
		t.Fatalf("exit code = 0 after an oversized input line; stderr = %q", stderr)
	}
	if !strings.Contains(stderr, "reading input") {
		t.Fatalf("stderr = %q, want a read error", stderr)
	}
}

func TestScriptFileErrorExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.sql")
	if err := os.WriteFile(path, []byte("INSERT INTO missing VALUES (1);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runShell(t, options{scripts: []string{path}}, "")
	if code == 0 {
		t.Fatalf("exit code = 0 for a failing script; stderr = %q", stderr)
	}
}

func TestRemoteModeRoundTrip(t *testing.T) {
	db := engine.OpenMemory()
	defer db.Close()
	srv := server.New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	code, stdout, stderr := runShell(t, options{connect: ln.Addr().String()}, `
CREATE TABLE t (id INT PRIMARY KEY, name TEXT);
INSERT INTO t VALUES (1, 'remote row');
SELECT id, name FROM t;
BEGIN;
INSERT INTO t VALUES (2, 'rolled back');
ROLLBACK;
SELECT id FROM t;
`)
	if code != 0 {
		t.Fatalf("remote shell exit code = %d, stderr = %q", code, stderr)
	}
	if !strings.Contains(stdout, "remote row") {
		t.Fatalf("stdout = %q", stdout)
	}
	if !strings.Contains(stdout, "(1 row(s))") || strings.Contains(stdout, "(2 row(s))") {
		t.Fatalf("rollback over the wire did not take effect: %q", stdout)
	}
	// An error over the wire exits non-zero too.
	code, _, stderr = runShell(t, options{connect: ln.Addr().String()}, "INSERT INTO missing VALUES (1);\n")
	if code == 0 {
		t.Fatalf("remote error exit code = 0; stderr = %q", stderr)
	}
}
