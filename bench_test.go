// Package repro's top-level benchmarks: one benchmark per experiment in the
// paper's evaluation (E1–E8, see DESIGN.md). Each benchmark measures the
// operation the corresponding table or figure reports, with workload setup
// outside the timed region; cmd/wowbench prints the full tables with the
// parameter sweeps.
package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/workload"
)

// benchSizes keeps the benchmark database small enough that -bench=. finishes
// in a couple of minutes while still exercising the index paths.
var benchSizes = workload.Sizes{Customers: 2000, Orders: 10000, ItemsPerOrder: 2}

// newBenchEnv populates a database and compiles the standard forms.
func newBenchEnv(b *testing.B, sizes workload.Sizes) (*engine.Database, map[string]*core.Form) {
	b.Helper()
	db := engine.OpenMemory()
	if err := workload.Populate(db, sizes); err != nil {
		b.Fatal(err)
	}
	forms, err := core.NewCompiler(db).CompileSource(workload.StandardForms)
	if err != nil {
		b.Fatal(err)
	}
	byName := map[string]*core.Form{}
	for _, f := range forms {
		byName[f.Def.Name] = f
	}
	return db, byName
}

func openBenchWindow(b *testing.B, db *engine.Database, form *core.Form) (*core.Manager, *core.Window) {
	b.Helper()
	m := core.NewManager(db, 100, 30)
	w, err := m.Open(form, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	return m, w
}

// BenchmarkE1FormVsBaseline — Table 1: the same business operations through a
// form window and through hand-written SQL.
func BenchmarkE1FormVsBaseline(b *testing.B) {
	b.Run("FormInsert", func(b *testing.B) {
		db, forms := newBenchEnv(b, benchSizes)
		_, w := openBenchWindow(b, db, forms["customer_form"])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.BeginInsert(); err != nil {
				b.Fatal(err)
			}
			mustSet(b, w, "id", fmt.Sprintf("%d", benchSizes.Customers+1+i))
			mustSet(b, w, "name", "Bench Customer")
			mustSet(b, w, "city", "Boston")
			if err := w.Save(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BaselineInsert", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		app := baseline.New(db)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := app.InsertCustomer(benchSizes.Customers+1+i, "Bench Customer", "Boston", 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FormLookup", func(b *testing.B) {
		db, forms := newBenchEnv(b, benchSizes)
		_, w := openBenchWindow(b, db, forms["customer_form"])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Query(map[string]string{"id": fmt.Sprintf("%d", 1+i%benchSizes.Customers)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BaselineLookup", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		app := baseline.New(db)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := app.LookupCustomer(1 + i%benchSizes.Customers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FormUpdate", func(b *testing.B) {
		db, forms := newBenchEnv(b, benchSizes)
		_, w := openBenchWindow(b, db, forms["customer_form"])
		if err := w.Query(map[string]string{"id": "1"}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.BeginEdit(); err != nil {
				b.Fatal(err)
			}
			mustSet(b, w, "credit", fmt.Sprintf("%d", 100+i%1000))
			if err := w.Save(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BaselineUpdate", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		app := baseline.New(db)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := app.UpdateCredit(1, float64(100+i%1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustSet(b *testing.B, w *core.Window, field, text string) {
	b.Helper()
	if err := w.SetFieldText(field, text); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE2QueryByForm — Table 2: query-by-form latency at different
// selectivities and access paths.
func BenchmarkE2QueryByForm(b *testing.B) {
	cases := []struct {
		name     string
		patterns map[string]string
	}{
		{"KeyLookup", map[string]string{"id": "17"}},
		{"CityIndex", map[string]string{"city": workload.CityAt(0)}},
		{"Credit10pct", map[string]string{"credit": ">1800"}},
		{"Credit50pct", map[string]string{"credit": ">1000"}},
		{"NameLike", map[string]string{"name": "A%"}},
	}
	db, forms := newBenchEnv(b, benchSizes)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			_, w := openBenchWindow(b, db, forms["customer_form"])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Query(c.patterns); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(w.RowCount()), "rows")
		})
	}
}

// BenchmarkE3MasterDetail — Figure 1: detail refresh cost as the detail
// cardinality per master grows.
func BenchmarkE3MasterDetail(b *testing.B) {
	for _, detailRows := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("DetailRows%d", detailRows), func(b *testing.B) {
			db := engine.OpenMemory()
			s := db.Session()
			if _, err := s.ExecuteScript(workload.StandardSchema); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Execute("INSERT INTO customers (id, name, city, credit, since) VALUES (1, 'A', 'Boston', 1, '1983-01-01'), (2, 'B', 'Boston', 1, '1983-01-01')"); err != nil {
				b.Fatal(err)
			}
			orderID := 1
			for master := 1; master <= 2; master++ {
				for i := 0; i < detailRows; i++ {
					if _, err := s.Execute(fmt.Sprintf("INSERT INTO orders (id, customer_id, placed, total) VALUES (%d, %d, '1983-02-01', 1)", orderID, master)); err != nil {
						b.Fatal(err)
					}
					orderID++
				}
			}
			forms, err := core.NewCompiler(db).CompileSource(workload.StandardForms)
			if err != nil {
				b.Fatal(err)
			}
			var customerForm *core.Form
			for _, f := range forms {
				if f.Def.Name == "customer_form" {
					customerForm = f
				}
			}
			_, w := openBenchWindow(b, db, customerForm)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					err = w.LastRow()
				} else {
					err = w.FirstRow()
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4RefreshPropagation — Figure 2: the cost of one committed change
// while N other windows are open on the same table.
func BenchmarkE4RefreshPropagation(b *testing.B) {
	for _, windows := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("Windows%d", windows), func(b *testing.B) {
			db, forms := newBenchEnv(b, benchSizes)
			m := core.NewManager(db, 120, 40)
			writer, err := m.Open(forms["customer_form"], 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i < windows; i++ {
				w, err := m.Open(forms["customer_form"], 0, 0)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Query(map[string]string{"city": workload.CityAt(i)}); err != nil {
					b.Fatal(err)
				}
			}
			m.Focus(writer)
			if err := writer.Query(map[string]string{"id": "1"}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := writer.BeginEdit(); err != nil {
					b.Fatal(err)
				}
				mustSet(b, writer, "credit", fmt.Sprintf("%d", 500+i%1000))
				if err := writer.Save(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.WindowsRefreshed())/float64(b.N), "windows-refreshed/op")
		})
	}
}

// BenchmarkE5ViewUpdate — Table 3: updating through a view versus directly.
func BenchmarkE5ViewUpdate(b *testing.B) {
	b.Run("DirectUpdate", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		if _, err := s.Execute("UPDATE customers SET credit = 900 WHERE id = 1"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(fmt.Sprintf("UPDATE customers SET credit = %d WHERE id = 1", 600+i%100)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ThroughView", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		if _, err := s.Execute("UPDATE customers SET credit = 900 WHERE id = 1"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(fmt.Sprintf("UPDATE good_customers SET credit = %d WHERE id = 1", 600+i%100)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FormOverView", func(b *testing.B) {
		db, forms := newBenchEnv(b, benchSizes)
		if _, err := db.Session().Execute("UPDATE customers SET credit = 900 WHERE id = 1"); err != nil {
			b.Fatal(err)
		}
		_, w := openBenchWindow(b, db, forms["good_customer_form"])
		if err := w.Query(map[string]string{"id": "1"}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.BeginEdit(); err != nil {
				b.Fatal(err)
			}
			mustSet(b, w, "credit", fmt.Sprintf("%d", 600+i%100))
			if err := w.Save(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6Scrolling — Figure 3: per-keystroke scrolling cost at different
// table sizes (it should be flat).
func BenchmarkE6Scrolling(b *testing.B) {
	for _, rows := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("Rows%d", rows), func(b *testing.B) {
			db := engine.OpenMemory()
			if err := workload.Populate(db, workload.Sizes{Customers: 50, Orders: rows, ItemsPerOrder: 1}); err != nil {
				b.Fatal(err)
			}
			forms, err := core.NewCompiler(db).CompileSource(workload.StandardForms)
			if err != nil {
				b.Fatal(err)
			}
			var orderForm *core.Form
			for _, f := range forms {
				if f.Def.Name == "order_form" {
					orderForm = f
				}
			}
			_, w := openBenchWindow(b, db, orderForm)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if (i/(rows-1))%2 == 0 {
					err = w.NextRow()
				} else {
					err = w.PrevRow()
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			stats := w.Stats()
			b.ReportMetric(float64(stats.CellsPainted)/float64(b.N), "cells/op")
		})
	}
}

// BenchmarkE7Concurrency — Table 4: concurrent form sessions inserting orders
// against table-granularity locking.
func BenchmarkE7Concurrency(b *testing.B) {
	db, forms := newBenchEnv(b, benchSizes)
	var nextID atomic.Int64
	nextID.Store(1 << 20)
	var aborts atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		m := core.NewManager(db, 100, 30)
		w, err := m.Open(forms["order_form"], 0, 0)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			id := nextID.Add(1)
			err := func() error {
				if err := w.BeginInsert(); err != nil {
					return err
				}
				if err := w.SetFieldText("id", fmt.Sprintf("%d", id)); err != nil {
					return err
				}
				if err := w.SetFieldText("customer_id", "1"); err != nil {
					return err
				}
				if err := w.SetFieldText("total", "10"); err != nil {
					return err
				}
				return w.Save()
			}()
			if err != nil {
				aborts.Add(1)
				w.Cancel()
			}
		}
	})
	b.ReportMetric(float64(aborts.Load()), "aborts")
}

// BenchmarkE8KeystrokeEconomy — Figure 4: keystrokes and repaint work per
// completed lookup task through the form interface, against the keystrokes an
// expert typing SQL would need.
func BenchmarkE8KeystrokeEconomy(b *testing.B) {
	b.Run("FormTask", func(b *testing.B) {
		db, forms := newBenchEnv(b, benchSizes)
		_, w := openBenchWindow(b, db, forms["customer_form"])
		script := workload.CustomerLookupScript("Boston", 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.HandleScript(script); err != nil {
				b.Fatal(err)
			}
		}
		stats := w.Stats()
		b.ReportMetric(float64(stats.Keystrokes)/float64(b.N), "keystrokes/op")
		b.ReportMetric(float64(stats.CellsPainted)/float64(b.N), "cells/op")
	})
	b.Run("SQLTask", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		app := baseline.New(db)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := app.CustomersInCity("Boston"); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(app.KeystrokesTyped)/float64(b.N), "keystrokes/op")
	})
}

// BenchmarkPreparedVsExecute — the tentpole measurement for the prepared-
// statement API: the same parameterized point SELECT issued as fresh text
// every iteration (re-lex, re-parse, re-plan) versus prepared once and
// rebound. The prepared path must win: the whole front half of the engine
// drops out of the hot loop.
func BenchmarkPreparedVsExecute(b *testing.B) {
	b.Run("Execute", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.Query(fmt.Sprintf("SELECT name, credit FROM customers WHERE id = %d", 1+i%benchSizes.Customers))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	b.Run("Prepared", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		stmt, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
		if err != nil {
			b.Fatal(err)
		}
		defer stmt.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := stmt.Exec(types.NewInt(int64(1 + i%benchSizes.Customers)))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	b.Run("PreparedCursor", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		stmt, err := s.Prepare("SELECT name, credit FROM customers WHERE id = ?")
		if err != nil {
			b.Fatal(err)
		}
		defer stmt.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := stmt.Query(types.NewInt(int64(1 + i%benchSizes.Customers)))
			if err != nil {
				b.Fatal(err)
			}
			if !rows.Next() {
				b.Fatal("expected a row")
			}
			rows.Close()
		}
	})
}

// BenchmarkPlannedWrites — the tentpole measurement for planned DML: a
// parameterized range UPDATE on the indexed key (the planner's index range
// scan, resolved from the bind frame at run time) versus the same statement
// as fresh text per iteration, and a bulk INSERT through ExecBatch array
// binding versus a loop of per-row autocommit statements.
func BenchmarkPlannedWrites(b *testing.B) {
	const batch = 100
	b.Run("RangeUpdatePrepared", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		stmt, err := s.Prepare("UPDATE orders SET total = ? WHERE id > ? AND id < ?")
		if err != nil {
			b.Fatal(err)
		}
		defer stmt.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(types.NewFloat(float64(i)), types.NewInt(0), types.NewInt(101)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RangeUpdateExecuteText", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(fmt.Sprintf("UPDATE orders SET total = %d WHERE id > 0 AND id < 101", i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BatchInsert", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		stmt, err := s.Prepare("INSERT INTO orders (id, customer_id, placed, total) VALUES (?, ?, '1983-06-01', ?)")
		if err != nil {
			b.Fatal(err)
		}
		defer stmt.Close()
		rows := make([][]types.Value, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range rows {
				rows[j] = []types.Value{
					types.NewInt(int64(1<<21 + i*batch + j)),
					types.NewInt(1),
					types.NewFloat(10),
				}
			}
			if _, err := stmt.ExecBatch(rows); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(batch, "rows/op")
	})
	b.Run("LoopInsert", func(b *testing.B) {
		db, _ := newBenchEnv(b, benchSizes)
		s := db.Session()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				if _, err := s.Execute(fmt.Sprintf(
					"INSERT INTO orders (id, customer_id, placed, total) VALUES (%d, 1, '1983-06-01', 10)",
					1<<22+i*batch+j)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(batch, "rows/op")
	})
}
